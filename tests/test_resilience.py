"""Tests for the resilience layer: failpoints, arbitration, quarantine.

Covers the failpoint framework (parsing, determinism, firing semantics),
retry-with-quorum verdict arbitration (units plus serial/parallel
integration with injected hangs and kills), the killer quarantine
(persistence, campaign skip-with-record, CLI review), the respawn
circuit breaker (units plus the deterministic-killer regression suite
and the degrade-to-serial path), the hardened progress/sink callbacks,
fsync'd checkpointing, and the chaos soak: a campaign interrupted by
seeded injected faults and resumed from its streaming log must produce
records identical to an uninterrupted run.
"""

import multiprocessing
import os

import pytest

from repro.fault import failpoints
from repro.fault.campaign import Campaign
from repro.fault.executor import (
    FAULT_ONCE_DIR_ENV,
    HANG_SPEC_ENV,
    KILL_SPEC_ENV,
    worker_killed_record,
)
from repro.fault.failpoints import ChaosError, Failpoints, Rule
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.resilience import (
    Quarantine,
    RespawnBreaker,
    RetryPolicy,
    VerdictArbiter,
    quarantined_record,
)
from repro.fault.stats import durability_summary
from repro.fault.testlog import CampaignLog, LogStream, TestRecord
from repro.fault.wire import decode_record, encode_record

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel execution requires the fork start method",
)

SUITE = ("XM_reset_system",)  # 5 specs: small enough to soak repeatedly


def strip_provenance(record):
    """Record dict minus fields that legitimately vary between runs."""
    data = record.to_dict()
    for field in ("wall_time_s", "host_context", "attempts", "arbitrated"):
        data.pop(field)
    return data


def make_spec(n=0, function="XM_mask_irq"):
    return TestCallSpec(
        f"res#{n}",
        function,
        "Interrupt Management",
        (ArgSpec("irqLine", "1", value=1),),
    )


class TestFailpoints:
    def test_chaos_arms_every_site(self):
        armed = Failpoints.chaos(seed=3, rate=0.5)
        assert set(armed.rules) == set(failpoints.SITES)
        assert all(rule.action == "*" for rule in armed.rules.values())

    def test_parse_chaos_grammar(self):
        armed = Failpoints.parse("chaos:42:0.25")
        assert armed.seed == 42
        assert armed.rules["executor.run"].probability == 0.25

    def test_parse_explicit_clauses(self):
        armed = Failpoints.parse(
            "testlog.append=short-write@3, executor.run=raise:0.1"
        )
        assert armed.rules["testlog.append"] == Rule(
            "short-write", probability=1.0, at_hit=3
        )
        assert armed.rules["executor.run"] == Rule("raise", probability=0.1)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint site"):
            Failpoints.parse("no.such.site=raise")

    def test_disallowed_action_rejected(self):
        # short-write is cooperative: only the log-append site owns a
        # file write it can truncate.
        with pytest.raises(ValueError, match="not allowed"):
            Failpoints.parse("executor.run=short-write")

    def test_malformed_clause_rejected(self):
        with pytest.raises(ValueError, match="site=action"):
            Failpoints.parse("testlog.append")

    def test_at_hit_fires_exactly_once(self):
        armed = Failpoints({"executor.recycle": Rule("raise", at_hit=2)})
        assert armed.fire("executor.recycle") is None
        with pytest.raises(ChaosError):
            armed.fire("executor.recycle")
        for _ in range(5):
            assert armed.fire("executor.recycle") is None
        assert armed.hits("executor.recycle") == 7

    def test_unarmed_site_is_a_no_op(self):
        armed = Failpoints({"executor.run": Rule("delay")})
        assert armed.fire("testlog.flush") is None

    def test_probabilistic_schedule_is_deterministic_per_seed(self):
        def schedule(seed):
            armed = Failpoints.chaos(seed=seed, rate=0.3)
            fired = []
            for hit in range(60):
                try:
                    result = armed.fire("testlog.flush")
                except ChaosError:
                    result = "raise"
                fired.append((hit, result))
            return fired

        assert schedule(7) == schedule(7)  # same seed: same fault schedule
        assert schedule(7) != schedule(8)  # different seed: different one

    def test_kill_degrades_to_raise_outside_workers(self):
        # In the campaign parent the kill action must never take the
        # harness down; it degrades to an in-process ChaosError.
        armed = Failpoints({"executor.run": Rule("kill")})
        assert not failpoints._WORKER_PROCESS
        with pytest.raises(ChaosError):
            armed.fire("executor.run")

    def test_short_write_is_returned_to_the_caller(self):
        armed = Failpoints({"testlog.append": Rule("short-write")})
        assert armed.fire("testlog.append") == "short-write"

    def test_active_reparses_only_on_env_change(self, monkeypatch):
        monkeypatch.setenv(failpoints.ENV_VAR, "executor.run=raise@5")
        first = failpoints.active()
        assert first is failpoints.active()  # cached while env unchanged
        monkeypatch.setenv(failpoints.ENV_VAR, "executor.run=raise@6")
        assert failpoints.active() is not first
        monkeypatch.delenv(failpoints.ENV_VAR)
        assert failpoints.active() is None


class TestRetryPolicy:
    def test_defaults_rerun_suspects_once(self):
        policy = RetryPolicy()
        assert (policy.max_attempts, policy.quorum) == (3, 2)
        assert not policy.single_shot

    def test_single_shot_forms(self):
        assert RetryPolicy(max_attempts=1, quorum=1).single_shot
        assert RetryPolicy(max_attempts=3, quorum=1).single_shot
        assert not RetryPolicy(max_attempts=2, quorum=2).single_shot

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="quorum"):
            RetryPolicy(max_attempts=2, quorum=3)
        with pytest.raises(ValueError, match="backoff_s"):
            RetryPolicy(backoff_s=-1.0)


class TestVerdictArbiter:
    def test_quorum_decides(self):
        arbiter = VerdictArbiter(RetryPolicy(max_attempts=3, quorum=2))
        assert not arbiter.observe("t", "worker_killed")
        assert arbiter.observe("t", "worker_killed")
        assert arbiter.observations("t") == ["worker_killed", "worker_killed"]

    def test_attempt_budget_caps_arbitration(self):
        arbiter = VerdictArbiter(RetryPolicy(max_attempts=2, quorum=2))
        assert not arbiter.observe("t", "watchdog_expired")
        assert arbiter.observe("t", "watchdog_expired")

    def test_annotate_lethal_and_genuine(self):
        arbiter = VerdictArbiter(RetryPolicy())
        arbiter.observe("t", "watchdog_expired")
        lethal = TestRecord("t", "f", "c", watchdog_expired=True, sim_hung=True)
        arbiter.annotate(lethal)
        assert (lethal.attempts, lethal.arbitrated) == (1, False)
        # A genuine completion after one lethal observation consumed
        # one run more than the observation count.
        genuine = TestRecord("t", "f", "c")
        arbiter.annotate(genuine)
        assert (genuine.attempts, genuine.arbitrated) == (2, True)
        # No lethal history: annotate leaves the record untouched.
        clean = TestRecord("u", "f", "c")
        arbiter.annotate(clean)
        assert (clean.attempts, clean.arbitrated) == (1, False)


class TestQuarantinePersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "q.json"
        quarantine = Quarantine.load(path)  # missing file = empty
        assert len(quarantine) == 0
        quarantine.add("k#1", "XM_mask_irq", ["worker_killed"] * 2)
        quarantine.add("k#1", "XM_mask_irq", ["ignored"])  # idempotent
        assert quarantine.dirty
        quarantine.save()
        assert not quarantine.dirty
        loaded = Quarantine.load(path)
        assert "k#1" in loaded and len(loaded) == 1
        assert loaded.entries["k#1"]["observations"] == ["worker_killed"] * 2

    def test_remove_and_clear(self, tmp_path):
        quarantine = Quarantine(tmp_path / "q.json", {"a": {}, "b": {}})
        assert quarantine.remove("a")
        assert not quarantine.remove("a")
        quarantine.clear()
        assert len(quarantine) == 0 and list(quarantine) == []

    def test_quarantined_record_keeps_the_verdict(self):
        record = quarantined_record(
            make_spec(), "3.4.0", 2, {"observations": ["worker_killed"]}
        )
        assert record.worker_killed and record.quarantined
        assert record.host_context["observations"] == ["worker_killed"]
        # The verdict survives the wire, so saved logs show the skip.
        assert decode_record(encode_record(record)).quarantined

    def test_save_honors_umask(self, tmp_path):
        """The atomic save must not keep mkstemp's 0600 mode — a shared
        quarantine file other users cannot read defeats its purpose."""
        path = tmp_path / "q.json"
        quarantine = Quarantine(path, {"k#1": {}})
        umask = os.umask(0o022)
        try:
            quarantine.save()
        finally:
            os.umask(umask)
        assert os.stat(path).st_mode & 0o777 == 0o644

    def test_save_respects_tighter_umask(self, tmp_path):
        path = tmp_path / "q.json"
        quarantine = Quarantine(path, {"k#1": {}})
        umask = os.umask(0o077)
        try:
            quarantine.save()
        finally:
            os.umask(umask)
        assert os.stat(path).st_mode & 0o777 == 0o600


class TestRespawnBreaker:
    def test_trips_after_consecutive_unproductive_rounds(self):
        breaker = RespawnBreaker(limit=2)
        breaker.note_spawn()
        breaker.note_round(productive=False)
        assert not breaker.tripped
        breaker.note_round(productive=True)  # progress resets the streak
        breaker.note_round(productive=False)
        assert not breaker.tripped
        breaker.note_round(productive=False)
        assert breaker.tripped
        assert breaker.respawns == 1


class TestSerialArbitration:
    def test_watchdog_verdict_needs_quorum(self, monkeypatch):
        campaign = Campaign(functions=SUITE)
        victim = next(iter(campaign.iter_specs()))
        monkeypatch.setenv(HANG_SPEC_ENV, victim.test_id)
        result = campaign.run(timeout_s=0.2)
        record = next(r for r in result.log if r.test_id == victim.test_id)
        assert record.watchdog_expired and record.sim_hung
        assert (record.attempts, record.arbitrated) == (2, True)
        assert record.host_context == {
            "processes": 1,
            "shard_size": 1,
            "attempt": 2,
        }
        summary = durability_summary(result.log)
        assert summary["arbitrated"] == 1
        assert summary["retried_runs"] == 1

    def test_transient_hang_is_retried_to_a_genuine_record(
        self, tmp_path, monkeypatch
    ):
        # The hang fires exactly once (one-shot marker dir): the first
        # run expires the watchdog, the re-run completes normally, and
        # the genuine record wins the arbitration — with the consumed
        # attempts on record.
        campaign = Campaign(functions=SUITE)
        clean = campaign.run().log.records
        victim = next(iter(campaign.iter_specs()))
        monkeypatch.setenv(HANG_SPEC_ENV, victim.test_id)
        monkeypatch.setenv(FAULT_ONCE_DIR_ENV, str(tmp_path))
        result = campaign.run(timeout_s=0.2)
        record = next(r for r in result.log if r.test_id == victim.test_id)
        assert not record.watchdog_expired and not record.sim_hung
        assert (record.attempts, record.arbitrated) == (2, True)
        expected = next(r for r in clean if r.test_id == victim.test_id)
        assert strip_provenance(record) == strip_provenance(expected)

    def test_single_shot_policy_restores_first_sight_verdicts(
        self, monkeypatch
    ):
        campaign = Campaign(functions=SUITE)
        victim = next(iter(campaign.iter_specs()))
        monkeypatch.setenv(HANG_SPEC_ENV, victim.test_id)
        result = campaign.run(
            timeout_s=0.2, retry_policy=RetryPolicy(max_attempts=1, quorum=1)
        )
        record = next(r for r in result.log if r.test_id == victim.test_id)
        assert record.watchdog_expired
        assert (record.attempts, record.arbitrated) == (1, False)


@needs_fork
class TestParallelArbitration:
    def test_killer_verdict_is_quorum_arbitrated(self, monkeypatch):
        campaign = Campaign(functions=SUITE, warm_boot=False)
        victim = next(iter(campaign.iter_specs()))
        monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
        result = campaign.run(processes=2)
        record = next(r for r in result.log if r.test_id == victim.test_id)
        assert record.worker_killed
        assert (record.attempts, record.arbitrated) == (2, True)
        assert record.host_context["processes"] == 2
        assert record.host_context["attempt"] == 2
        assert result.execution_stats["retries"] == 1

    def test_transient_kill_is_exonerated(self, tmp_path, monkeypatch):
        # The kill fires once (one-shot marker): the probe re-run
        # completes normally, so no worker_killed verdict is issued and
        # the record is the genuine one.
        campaign = Campaign(functions=SUITE, warm_boot=False)
        clean = campaign.run().log.records
        victim = next(iter(campaign.iter_specs()))
        monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
        monkeypatch.setenv(FAULT_ONCE_DIR_ENV, str(tmp_path))
        result = campaign.run(processes=2)
        record = next(r for r in result.log if r.test_id == victim.test_id)
        assert not record.worker_killed
        expected = next(r for r in clean if r.test_id == victim.test_id)
        assert strip_provenance(record) == strip_provenance(expected)
        assert durability_summary(result.log)["worker_killed"] == 0


@needs_fork
class TestKillerSuiteRegression:
    def test_every_spec_killing_its_worker_stays_bounded(
        self, tmp_path, monkeypatch
    ):
        # Probe-loop pathology: a suite where *every* spec kills its
        # worker must terminate with one quorum-arbitrated
        # worker_killed record per spec and a bounded number of pool
        # respawns (the respawn circuit breaker's regression test).
        monkeypatch.setenv(KILL_SPEC_ENV, "*")
        campaign = Campaign(functions=SUITE, warm_boot=False)
        total = campaign.total_tests()
        quarantine_path = tmp_path / "killers.json"
        result = campaign.run(processes=2, quarantine_path=quarantine_path)
        assert len(result.log) == total
        assert all(r.worker_killed for r in result.log)
        assert all(
            (r.attempts, r.arbitrated) == (2, True) for r in result.log
        )
        stats = result.execution_stats
        # Each verdict needs exactly two probe-observed kills.
        assert stats["probe_respawns"] == 2 * total
        assert stats["pool_respawns"] <= total
        assert not stats["degraded_serial"]
        assert len(Quarantine.load(quarantine_path)) == total

    def test_quarantined_killers_are_skipped_with_records(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(KILL_SPEC_ENV, "*")
        campaign = Campaign(functions=SUITE, warm_boot=False)
        quarantine_path = tmp_path / "killers.json"
        campaign.run(processes=2, quarantine_path=quarantine_path)
        # Second campaign: nothing is re-fed to a worker, yet the
        # verdicts stay visible as quarantined worker_killed records.
        rerun = campaign.run(processes=2, quarantine_path=quarantine_path)
        assert len(rerun.log) == campaign.total_tests()
        assert all(r.worker_killed and r.quarantined for r in rerun.log)
        assert rerun.execution_stats["quarantined_skips"] == len(rerun.log)
        assert rerun.execution_stats["pool_respawns"] == 0
        summary = durability_summary(rerun.log)
        assert summary["quarantined"] == len(rerun.log)


@needs_fork
class TestRespawnBudgetDegrade:
    def test_unproductive_respawns_degrade_to_serial(self, monkeypatch):
        # A pool that keeps breaking without delivering anything must
        # not respawn forever: after the breaker's limit the campaign
        # finishes on the serial in-process runner.
        campaign = Campaign(functions=SUITE)
        specs = list(campaign.iter_specs())
        calls = {"rounds": 0}

        def dying_pool_round(
            specs_in, processes, shard_size, timeout_s, deliver, stats=None
        ):
            calls["rounds"] += 1
            if calls["rounds"] == 1:
                # Announce one suspectless delivery so the first round
                # does not look like an initializer failure.
                record = TestRecord(
                    test_id=specs_in[0].test_id,
                    function=specs_in[0].function,
                    category=specs_in[0].category,
                    arg_labels=specs_in[0].arg_labels(),
                    kernel_version=campaign.kernel_version,
                    frames=campaign.frames,
                )
                deliver(record)
                return {record.test_id}, set(), [], True
            return set(), set(), [], True

        monkeypatch.setattr(campaign, "_pool_round", dying_pool_round)
        with pytest.warns(UserWarning, match="respawn budget exhausted"):
            result = campaign.run(processes=2)
        assert len(result.log) == len(specs)
        stats = result.execution_stats
        assert stats["degraded_serial"]
        assert stats["pool_respawns"] == RespawnBreaker().limit
        # Rounds: 1 fake delivery + exactly `limit` unproductive
        # respawns; the breaker stops the thrash there.
        assert calls["rounds"] == 1 + RespawnBreaker().limit

    def test_initializer_failure_still_raises(self, monkeypatch):
        campaign = Campaign(functions=SUITE)

        def never_starts(
            specs_in, processes, shard_size, timeout_s, deliver, stats=None
        ):
            return set(), set(), [], True

        monkeypatch.setattr(campaign, "_pool_round", never_starts)
        with pytest.raises(RuntimeError, match="before any test started"):
            campaign.run(processes=2)


@needs_fork
class TestHardenedCallbacks:
    def test_raising_progress_hook_does_not_abort_the_campaign(self):
        calls = {"n": 0}

        def bad_progress(done, out_of, record):
            calls["n"] += 1
            raise RuntimeError("progress bar exploded")

        campaign = Campaign(functions=SUITE)
        with pytest.warns(UserWarning, match="progress callback raised"):
            result = campaign.run(processes=2, progress=bad_progress)
        assert len(result.log) == campaign.total_tests()
        assert calls["n"] == len(result.log)  # hook kept being called

    def test_raising_sink_warns_once_and_campaign_survives(self, tmp_path):
        # The streaming log is installed as the sink; break it behind
        # the campaign's back after the first record.
        campaign = Campaign(functions=SUITE)
        path = tmp_path / "log.jsonl"
        stream = CampaignLog.stream(path)
        seen = []

        def brittle_sink(record):
            seen.append(record.test_id)
            if len(seen) > 1:
                raise OSError("disk went away")
            stream.append(record)

        with pytest.warns(UserWarning, match="sink callback raised"):
            records = campaign._run_parallel(
                list(campaign.iter_specs()), 2, None, brittle_sink, None
            )
        stream.close()
        assert len(records) == campaign.total_tests()
        assert len(seen) == len(records)

    def test_keyboard_interrupt_from_progress_still_aborts(self):
        # Interrupting from a hook is the documented way to stop a
        # campaign; hardening must not swallow BaseException.
        def interrupt(done, out_of, record):
            raise KeyboardInterrupt

        campaign = Campaign(functions=SUITE)
        with pytest.raises(KeyboardInterrupt):
            campaign.run(processes=2, progress=interrupt)


class TestFsyncStream:
    def test_fsync_follows_every_flush(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            synced.append(fd)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        path = tmp_path / "log.jsonl"
        with LogStream(path, fsync=True) as stream:
            for n in range(3):
                stream.append(
                    TestRecord(f"fs#{n}", "XM_mask_irq", "Interrupt Management")
                )
        assert len(synced) >= 3  # one per checkpoint (+ one on close)
        assert len(CampaignLog.load(path)) == 3

    def test_flush_only_stream_never_fsyncs(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        with LogStream(tmp_path / "log.jsonl") as stream:
            stream.append(TestRecord("fs#0", "XM_mask_irq", "x"))
        assert synced == []

    def test_campaign_plumbs_log_fsync(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        campaign = Campaign(functions=SUITE)
        campaign.run(log_path=tmp_path / "log.jsonl", log_fsync=True)
        assert len(synced) >= campaign.total_tests()


class TestWireProvenance:
    def test_provenance_fields_survive_the_relay(self):
        record = worker_killed_record(
            make_spec(),
            "3.4.0",
            2,
            attempts=2,
            arbitrated=True,
            host_context={"processes": 4, "shard_size": 8, "attempt": 2},
        )
        decoded = decode_record(encode_record(record))
        assert decoded.attempts == 2 and decoded.arbitrated
        assert decoded.host_context == record.host_context

    def test_provenance_fields_survive_the_log(self, tmp_path):
        record = worker_killed_record(
            make_spec(), "3.4.0", 2, attempts=3, arbitrated=True
        )
        path = tmp_path / "log.jsonl"
        CampaignLog([record]).save(path)
        loaded = CampaignLog.load(path).records[0]
        assert (loaded.attempts, loaded.arbitrated) == (3, True)


class TestChaosSoak:
    def test_short_write_injection_is_repaired_on_resume(
        self, tmp_path, monkeypatch
    ):
        # Deterministic miniature of the soak: the third checkpoint is
        # cut short mid-line (power-loss model); reopening the stream
        # truncates the partial tail, and the dedup-by-id append
        # rewrites only the lost record.
        path = tmp_path / "log.jsonl"
        records = [
            TestRecord(f"sw#{n}", "XM_mask_irq", "Interrupt Management")
            for n in range(4)
        ]
        monkeypatch.setenv(failpoints.ENV_VAR, "testlog.append=short-write@3")
        stream = LogStream(path)
        with pytest.raises(ChaosError, match="short write"):
            for record in records:
                stream.append(record)
        stream.close()
        monkeypatch.delenv(failpoints.ENV_VAR)
        with pytest.warns(UserWarning, match="truncated final record"):
            resumed = LogStream(path)
        assert resumed.existing == {"sw#0", "sw#1"}
        for record in records:  # idempotent: durable ids are skipped
            resumed.append(record)
        resumed.close()
        loaded = CampaignLog.load(path)
        assert [r.test_id for r in loaded] == [r.test_id for r in records]

    def test_interrupted_anywhere_plus_resume_equals_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        # The tentpole invariant, soaked over many random failpoint
        # seeds: run under chaos (the campaign may be interrupted at
        # any armed site), then resume from the streaming log with
        # chaos disarmed — the combined records must be identical to an
        # uninterrupted run's, modulo provenance.
        campaign = Campaign(functions=SUITE)
        baseline = [strip_provenance(r) for r in campaign.run().log]
        interrupted = 0
        for seed in range(25):
            path = tmp_path / f"chaos-{seed}.jsonl"
            monkeypatch.setenv(failpoints.ENV_VAR, f"chaos:{seed}:0.2")
            try:
                campaign.run(log_path=path)
            except ChaosError:
                interrupted += 1
            finally:
                monkeypatch.delenv(failpoints.ENV_VAR, raising=False)
            resume = CampaignLog.load(path) if path.exists() else None
            result = campaign.run(log_path=path, resume_from=resume)
            assert [
                strip_provenance(r) for r in result.log
            ] == baseline, f"seed {seed} diverged after resume"
        # With 4+ armed sites per test and a 0.2 rate, a large majority
        # of seeds must actually interrupt — otherwise the soak proves
        # nothing.
        assert interrupted >= 10

    @needs_fork
    def test_parallel_chaos_checkpoint_fault_resumes_losslessly(
        self, tmp_path, monkeypatch
    ):
        # Parent-side injection under the parallel runner: the third
        # checkpoint append raises mid-round.  The two records already
        # streamed must survive, and the resumed run must complete the
        # campaign to exactly the uninterrupted baseline.
        campaign = Campaign(functions=SUITE)
        baseline = [strip_provenance(r) for r in campaign.run().log]
        path = tmp_path / "parallel-chaos.jsonl"
        monkeypatch.setenv(failpoints.ENV_VAR, "testlog.append=raise@3")
        with pytest.raises(ChaosError):
            campaign.run(processes=2, log_path=path)
        monkeypatch.delenv(failpoints.ENV_VAR)
        checkpointed = CampaignLog.load(path)
        assert len(checkpointed) == 2
        result = campaign.run(
            processes=2, log_path=path, resume_from=checkpointed
        )
        assert [strip_provenance(r) for r in result.log] == baseline


class TestQuarantineCli:
    def test_review_remove_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "q.json"
        quarantine = Quarantine(path)
        quarantine.add("k#1", "XM_mask_irq", ["worker_killed"])
        quarantine.add("k#2", "XM_set_timer", ["worker_killed"] * 2)
        quarantine.save()

        assert main(["quarantine", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "k#1" in out and "k#2" in out and "2 quarantined" in out

        assert main(["quarantine", "--file", str(path), "--remove", "k#1"]) == 0
        assert "k#1" not in Quarantine.load(path)
        assert (
            main(["quarantine", "--file", str(path), "--remove", "k#1"]) == 2
        )

        assert main(["quarantine", "--file", str(path), "--clear"]) == 0
        assert len(Quarantine.load(path)) == 0
        assert main(["quarantine", "--file", str(path)]) == 0
        assert "empty" in capsys.readouterr().out


class TestChaosCli:
    def test_chaos_run_exits_3_and_resume_completes(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "chaos.jsonl"
        code = main(
            [
                "run",
                "--functions",
                "XM_reset_system",
                "--log",
                str(log),
                "--quiet",
                "--chaos",
                "11",
                "--chaos-rate",
                "0.3",
            ]
        )
        capsys.readouterr()
        assert code in (0, 3)  # the seed may or may not fire
        assert os.environ.get(failpoints.ENV_VAR) is None  # env restored
        resume_code = main(
            [
                "run",
                "--functions",
                "XM_reset_system",
                "--log",
                str(log),
                "--resume",
                "--quiet",
            ]
        )
        capsys.readouterr()
        assert resume_code == 0
        assert len(CampaignLog.load(log)) == 5
