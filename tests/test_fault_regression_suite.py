"""Tests for the pinned vulnerability regression suite."""

import pytest

from repro.fault.classify import FailureKind
from repro.fault.regression import (
    expected_kind,
    replay,
    vulnerability_spec,
    vulnerability_specs,
)
from repro.xm.vulns import FIXED_VERSION, KNOWN_VULNERABILITIES


class TestSuiteShape:
    def test_nine_pinned_specs(self):
        specs = vulnerability_specs()
        assert len(specs) == 9
        assert len({s.test_id for s in specs}) == 9

    def test_specs_target_the_right_hypercalls(self):
        for vulnerability in KNOWN_VULNERABILITIES:
            spec = vulnerability_spec(vulnerability)
            assert spec.function == vulnerability.hypercall

    def test_every_finding_has_an_expected_kind(self):
        for vulnerability in KNOWN_VULNERABILITIES:
            assert expected_kind(vulnerability.ident) is not None


class TestReplay:
    @pytest.fixture(scope="class")
    def vulnerable_outcomes(self):
        return {o.ident: o for o in replay()}

    @pytest.fixture(scope="class")
    def fixed_outcomes(self):
        return {o.ident: o for o in replay(FIXED_VERSION)}

    def test_all_reproduce_on_vulnerable_kernel(self, vulnerable_outcomes):
        assert all(o.reproduced for o in vulnerable_outcomes.values())

    def test_mechanisms_match_registry(self, vulnerable_outcomes):
        assert vulnerable_outcomes["XM-ST-1"].kind is FailureKind.KERNEL_HALT
        assert vulnerable_outcomes["XM-ST-2"].kind is FailureKind.SIM_CRASH
        assert vulnerable_outcomes["XM-MC-3"].kind is FailureKind.TEMPORAL_VIOLATION

    def test_none_reproduce_on_revised_kernel(self, fixed_outcomes):
        assert not any(o.reproduced for o in fixed_outcomes.values())
        assert all(not o.severity.is_failure for o in fixed_outcomes.values())

    def test_crash_class_alignment_with_registry(self, vulnerable_outcomes):
        """The replayed severities match the registry's crash classes."""
        for vulnerability in KNOWN_VULNERABILITIES:
            outcome = vulnerable_outcomes[vulnerability.ident]
            assert outcome.severity.value == vulnerability.crash_class, (
                vulnerability.ident
            )
