"""Unit tests for the delta-reset machinery.

Covers the three layers underneath the executor's reset ladder: the
generic object-graph journal (:mod:`repro.tsim.delta`), the physical
memory's dirty-span journal, and the event queue's cancellation
compaction / single-scan dispatch pop.
"""

from collections import deque

import pytest

from repro.fault.executor import CampaignPayload
from repro.fault.mutant import default_layout
from repro.sparc import Access, MemoryArea, PhysicalMemory
from repro.testbed import build_system
from repro.tsim.delta import (
    DeltaJournal,
    DeltaResetError,
    JournalOverflow,
    Unjournalable,
    capture_fields,
    restore_fields,
)
from repro.tsim.events import EventQueue


# -- journal over plain object graphs ---------------------------------------


class Node:
    def __init__(self, **attrs):
        self.__dict__.update(attrs)


class TestDeltaJournal:
    def test_reverts_fields_and_containers_in_place(self):
        shared = [1, 2]
        root = Node(
            number=1,
            text="a",
            items=shared,
            alias=shared,
            table={"k": 1},
            bag={1, 2},
            ring=deque([1]),
            buf=bytearray(b"abc"),
        )
        journal = DeltaJournal(root)
        root.number = 99
        root.text = "changed"
        root.items.append(3)
        root.table["k"] = 2
        root.table["new"] = 3
        root.bag.add(9)
        root.ring.append(2)
        root.buf[0:1] = b"X"
        journal.reset()
        assert root.number == 1
        assert root.text == "a"
        assert root.items == [1, 2]
        assert root.alias is root.items  # aliasing survives the revert
        assert root.table == {"k": 1}
        assert root.bag == {1, 2}
        assert list(root.ring) == [1]
        assert bytes(root.buf) == b"abc"

    def test_delta_skip_fields_keep_their_current_value(self):
        class Cached(Node):
            __delta_skip__ = ("cache",)

        root = Cached(value=1, cache={})
        journal = DeltaJournal(root)
        root.value = 2
        root.cache["warm"] = True
        journal.reset()
        assert root.value == 1
        assert root.cache == {"warm": True}  # preserved, not reverted

    def test_opaque_object_raises_unjournalable(self):
        root = Node(opaque=object())
        with pytest.raises(Unjournalable) as err:
            DeltaJournal(root)
        assert "opaque" in str(err.value)

    def test_cooperative_hooks_are_used(self):
        class Hooked:
            def __init__(self):
                self.value = 0
                self.resets = 0

            def snapshot_delta(self):
                return self.value

            def reset_from_delta(self, baseline):
                self.value = baseline
                self.resets += 1

        hooked = Hooked()
        root = Node(child=hooked)
        journal = DeltaJournal(root)
        hooked.value = 42
        journal.reset()
        assert hooked.value == 0
        assert hooked.resets == 1

    def test_capture_restore_fields_roundtrip(self):
        node = Node(a=1, b=2, extra_skip=0)
        captured = capture_fields(node, skip=("extra_skip",))
        node.a = 10
        node.extra_skip = 99
        node.post_capture = "later"
        restore_fields(node, captured)
        assert (node.a, node.b) == (1, 2)
        assert node.extra_skip == 99  # skip field keeps its live value
        assert not hasattr(node, "post_capture")  # post-capture fields drop


# -- physical memory dirty-span journal -------------------------------------


def make_memory():
    mem = PhysicalMemory()
    mem.add_area(MemoryArea("ram", 0x40000000, 0x1000, Access.RWX))
    return mem


class TestMemoryDelta:
    def test_reset_reverts_to_armed_baseline_not_zero(self):
        mem = make_memory()
        mem.write(0x40000010, b"base")
        mem.snapshot_delta()
        mem.write(0x40000010, b"XXXX")  # overwrite baseline bytes
        mem.write(0x40000100, b"new")  # dirty fresh bytes
        mem.reset_from_delta(None)
        assert mem.read(0x40000010, 4) == b"base"
        assert mem.read(0x40000100, 3) == b"\x00\x00\x00"

    def test_pending_bytes_track_post_arm_writes(self):
        mem = make_memory()
        mem.write(0x40000000, b"seed")
        mem.snapshot_delta()
        assert mem.delta_pending_bytes() == 0
        mem.write(0x40000020, b"ab")
        assert mem.delta_pending_bytes() == 2
        mem.reset_from_delta(None)
        # Post-reset content equals the baseline byte for byte, so the
        # next delta reset owes nothing; recycle safety comes from
        # delta_disarm() re-merging the baseline spans (tested below).
        assert mem.delta_pending_bytes() == 0

    def test_clear_while_armed_breaks_the_delta(self):
        mem = make_memory()
        mem.snapshot_delta()
        assert not mem.delta_broken
        mem.clear()
        assert mem.delta_broken

    def test_disarm_restores_full_dirty_accounting(self):
        mem = make_memory()
        mem.write(0x40000010, b"base")
        mem.snapshot_delta()
        mem.write(0x40000200, b"post")
        mem.delta_disarm()
        spans = dict(mem.export_spans())
        # Both the pre-arm and post-arm writes are dirty again, so a
        # recycle zeroes everything that was ever touched.
        size, offset, data = spans["ram"]
        assert offset <= 0x10
        assert offset + len(data) >= 0x204


# -- event queue cancellation and dispatch ----------------------------------


class TestEventQueue:
    def test_pop_due_returns_only_events_within_deadline(self):
        queue = EventQueue()
        queue.schedule(10, lambda now: None, name="early")
        queue.schedule(50, lambda now: None, name="late")
        event = queue.pop_due(20)
        assert event is not None and event.name == "early"
        assert queue.pop_due(20) is None  # "late" stays queued
        assert len(queue) == 1

    def test_pop_due_skips_cancelled_heads(self):
        queue = EventQueue()
        dead = queue.schedule(5, lambda now: None, name="dead")
        queue.schedule(6, lambda now: None, name="live")
        dead.cancel()
        event = queue.pop_due(10)
        assert event is not None and event.name == "live"
        assert queue._cancelled == 0

    def test_heavy_cancellation_compacts_the_heap(self):
        queue = EventQueue()
        events = [queue.schedule(i, lambda now: None) for i in range(10)]
        for event in events[:6]:
            event.cancel()
        # More than half the heap was dead: compaction dropped them all.
        assert queue._cancelled == 0
        assert len(queue._heap) == 4
        assert len(queue) == 4
        popped = [queue.pop().time_us for _ in range(4)]
        assert popped == [6, 7, 8, 9]  # pop order unchanged by compaction

    def test_cancel_after_pop_does_not_corrupt_the_counter(self):
        queue = EventQueue()
        event = queue.schedule(1, lambda now: None)
        assert queue.pop() is event
        event.cancel()  # already dispatched: must not touch the counter
        assert queue._cancelled == 0
        assert len(queue) == 0

    def test_snapshot_and_reset_rebuild_identical_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5, lambda now: fired.append("a"))
        queue.schedule(5, lambda now: fired.append("b"))
        dead = queue.schedule(5, lambda now: fired.append("dead"))
        dead.cancel()
        baseline = queue.snapshot_delta()
        queue.pop()
        queue.schedule(1, lambda now: fired.append("noise"))
        queue.reset_from_delta(baseline)
        while (event := queue.pop()) is not None:
            event.callback(event.time_us)
        assert fired == ["a", "b"]  # same-time ties keep scheduling order


# -- simulator arming and refusal paths -------------------------------------


def booted_sim():
    sim = build_system(fdir_payload=CampaignPayload(layout=default_layout()))
    kernel = sim.boot()
    sim.run_until(kernel.major_frame_us - 1)
    return sim, kernel


class TestSimulatorDelta:
    def test_reset_without_arm_is_refused(self):
        sim, _ = booted_sim()
        with pytest.raises(DeltaResetError):
            sim.reset()

    def test_arm_requires_a_booted_system(self):
        sim = build_system(fdir_payload=CampaignPayload(layout=default_layout()))
        with pytest.raises(DeltaResetError):
            sim.arm_delta()

    def test_budget_overflow_is_refused_before_any_revert(self):
        sim, kernel = booted_sim()
        sim.arm_delta(journal_budget=1)
        sim.run_until(3 * kernel.major_frame_us)
        with pytest.raises(JournalOverflow):
            sim.reset()
        # The refused reset left the simulator consistent and disarmable.
        sim.disarm_delta()
        assert not sim.kernel.is_halted()

    def test_reset_reverts_time_and_state(self):
        sim, kernel = booted_sim()
        armed_at = sim.now_us
        sim.arm_delta()
        sim.run_until(3 * kernel.major_frame_us)
        assert sim.now_us > armed_at
        sim.reset()
        assert sim.now_us == armed_at
        assert sim.kernel is kernel  # in place: same objects, reverted
        sim.run_until(3 * kernel.major_frame_us)
        assert not kernel.is_halted()
