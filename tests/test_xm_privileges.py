"""Privilege matrix: system-only services against a normal partition."""

import pytest

from repro.xm import rc
from repro.xm.api import HYPERCALL_TABLE, hypercall_by_name

from conftest import BootedSystem

SYSTEM_ONLY = [h.name for h in HYPERCALL_TABLE if h.system_only]
NORMAL_OK = [h.name for h in HYPERCALL_TABLE if not h.system_only and h.has_params]


def zero_args(name: str) -> tuple[int, ...]:
    return tuple(0 for _ in hypercall_by_name(name).params)


class TestSystemOnlyEnforcement:
    @pytest.mark.parametrize("name", SYSTEM_ONLY)
    def test_normal_partition_rejected(self, system, name):
        """Every privileged service refuses a normal partition, before
        any argument validation (so even all-zero args see PERM_ERROR)."""
        code = system.call(name, *zero_args(name), caller=system.aocs)
        assert code == rc.XM_PERM_ERROR, name

    def test_expected_privileged_set(self):
        assert set(SYSTEM_ONLY) == {
            "XM_get_system_status",
            "XM_reset_system",
            "XM_halt_system",
            "XM_get_partition_status",
            "XM_halt_partition",
            "XM_reset_partition",
            "XM_resume_partition",
            "XM_suspend_partition",
            "XM_shutdown_partition",
            "XM_switch_sched_plan",
            "XM_memory_copy",
            "XM_hm_status",
            "XM_hm_read",
            "XM_hm_seek",
            "XM_hm_reset_events",
            "XM_hm_raise_event",
        }

    def test_fdir_is_valid_test_partition_host(self):
        """The paper's rationale for using FDIR: its privileges make
        every hypercall category reachable.  Calls that legitimately do
        not return (self-halt, resets) count as reachable; each call
        gets a fresh system because several are destructive."""
        from repro.xm.errors import NoReturnFromHypercall

        for name in SYSTEM_ONLY:
            fresh = BootedSystem()
            assert fresh.fdir.is_system
            try:
                code = fresh.call(name, *zero_args(name))
            except NoReturnFromHypercall:
                continue
            assert code != rc.XM_PERM_ERROR, name


class TestNormalPartitionSurface:
    # Stream 0 belongs to FDIR: resource-level permission, not the
    # privilege check; vCPU 0 self-ops legitimately do not return.
    FOREIGN_STREAM = {"XM_trace_open", "XM_trace_read", "XM_trace_seek", "XM_trace_status"}
    SELF_OPS = {"XM_halt_vcpu", "XM_suspend_vcpu"}

    @pytest.mark.parametrize(
        "name",
        [n for n in NORMAL_OK if n != "XM_multicall"],
    )
    def test_unprivileged_services_reachable(self, system, name):
        """Non-privileged services never answer PERM_ERROR on the
        privilege check itself (they may on resource grounds, e.g. a
        foreign trace stream)."""
        from repro.xm.errors import NoReturnFromHypercall

        try:
            code = system.call(name, *zero_args(name), caller=system.aocs)
        except NoReturnFromHypercall:
            assert name in self.SELF_OPS
            return
        if name in self.FOREIGN_STREAM:
            assert code == rc.XM_PERM_ERROR
        else:
            assert code != rc.XM_PERM_ERROR, name

    def test_multicall_reachable_but_lethal(self, system):
        """Normal partitions may call XM_multicall too — and the 3.4.0
        defect bites them identically (fault contained to the caller)."""
        from repro.xm.errors import NoReturnFromHypercall
        from repro.xm.partition import PartitionState

        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_multicall", 0, 0, caller=system.aocs)
        assert system.kernel.partitions[1].state is PartitionState.HALTED
        assert system.fdir.state.runnable()
