"""Smoke tests: every shipped example runs clean."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "timer_vulnerability_deep_dive.py",
    "custom_kernel_api.py",
]
SLOW_EXAMPLES = [
    "fault_masking_demo.py",
    "phantom_parameters.py",
]


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES + SLOW_EXAMPLES)
def test_example_runs_clean(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout


def test_quickstart_output_content():
    proc = run_example("quickstart.py")
    assert "EagleEye TSP" in proc.stdout
    assert "XM-ST-1" in proc.stdout


def test_deep_dive_shows_both_failure_modes():
    proc = run_example("timer_vulnerability_deep_dive.py")
    assert "stack overflow" in proc.stdout
    assert "simulator crashed" in proc.stdout
    assert "3.4.1" in proc.stdout


def test_masking_demo_reports_masked_findings():
    proc = run_example("fault_masking_demo.py")
    assert "lost to fault masking" in proc.stdout
    assert "XM-MC-2" in proc.stdout


def test_full_campaign_example():
    """The headline example: Table III + 9 findings + fixed-kernel rerun."""
    proc = run_example("eagleeye_full_campaign.py")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "all 9 known vulnerabilities rediscovered." in proc.stdout
    assert "tests: 62, issues: 0" in proc.stdout
