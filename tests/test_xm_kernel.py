"""Unit tests for kernel boot, dispatch, privilege and fault containment."""

import pytest

from repro.sparc.memory import MemoryFault
from repro.xm import rc
from repro.xm.api import HYPERCALL_TABLE
from repro.xm.errors import NoReturnFromHypercall
from repro.xm.hm import HmEvent
from repro.xm.partition import PartitionState

from conftest import BootedSystem


class TestBoot:
    def test_five_partitions_built(self, system):
        assert sorted(system.kernel.partitions) == [0, 1, 2, 3, 4]

    def test_fdir_is_only_system_partition(self, system):
        flags = {p.ident: p.is_system for p in system.kernel.partitions.values()}
        assert flags == {0: True, 1: False, 2: False, 3: False, 4: False}

    def test_major_frame_is_250ms(self, system):
        assert system.kernel.major_frame_us == 250_000

    def test_memory_areas_mapped(self, system):
        names = {a.name for a in system.kernel.machine.memory.areas()}
        assert {"xm_kernel", "fdir_ram", "aocs_ram"} <= names

    def test_partition_space_cannot_touch_kernel(self, system):
        with pytest.raises(MemoryFault):
            system.fdir.address_space.read(0x40000000, 4)

    def test_partition_space_cannot_touch_other_partition(self, system):
        aocs_base = system.kernel.partitions[1].config.memory_areas[0].start
        with pytest.raises(MemoryFault):
            system.fdir.address_space.write(aocs_base, b"x")

    def test_kernel_space_reads_everything(self, system):
        for part in system.kernel.partitions.values():
            base = part.config.memory_areas[0].start
            assert system.kernel.kernel_space.read(base, 4) == bytes(4)


class TestDispatch:
    def test_unknown_hypercall(self, system):
        assert system.call("XM_not_a_service") == rc.XM_UNKNOWN_HYPERCALL

    def test_wrong_arity(self, system):
        assert system.call("XM_reset_partition", 1) == rc.XM_INVALID_PARAM

    def test_system_only_enforced_for_normal_partition(self, system):
        code = system.call(
            "XM_get_system_status", system.scratch(1), caller=system.aocs
        )
        assert code == rc.XM_PERM_ERROR

    def test_system_partition_passes_privilege_check(self, system):
        assert system.call("XM_get_system_status", system.scratch()) == rc.XM_OK

    def test_argument_conversion_wraps_like_c(self, system):
        # -1 as xm_u32_t mode must behave as 4294967295 (warm on 3.4.0).
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", -1)
        assert system.kernel.reset_log[-1].kind == "warm"

    def test_every_tested_hypercall_dispatches(self, system):
        """Every declared service resolves to a real manager method."""
        for hdef in HYPERCALL_TABLE:
            service = system.kernel._resolve_service(hdef)
            assert callable(service), hdef.name

    def test_hypercall_cost_charged(self, system):
        before = system.kernel.sched.slot_consumed_us
        system.call("XM_mask_irq", 1)
        assert system.kernel.sched.slot_consumed_us == before + system.kernel.HYPERCALL_COST_US


class TestFaultContainment:
    def test_unhandled_trap_halts_partition(self, system):
        # XM_multicall on 3.4.0 dereferences bad pointers in kernel context.
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_multicall", 0x50000000, 0x50000100)
        assert system.fdir.state is PartitionState.HALTED
        events = system.kernel.hm.events_of(HmEvent.UNHANDLED_TRAP)
        assert len(events) == 1
        assert events[0].partition_id == 0

    def test_fatal_error_halts_system(self, system):
        system.kernel.fatal("test fatal")
        assert system.kernel.is_halted()
        assert "FATAL_ERROR" in (system.kernel.halt_reason or "")

    def test_halt_is_idempotent(self, system):
        system.kernel.halt("first")
        system.kernel.halt("second")
        assert system.kernel.halt_reason == "first"


class TestSystemReset:
    def test_cold_reset_rebuilds_world(self, system):
        system.fdir.exec_clock_us = 123
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", rc.XM_COLD_RESET)
        assert system.kernel.reset_counter == 1
        assert system.kernel.boot_epoch == 1
        assert system.kernel.partitions[0].exec_clock_us == 0
        assert system.kernel.reset_log[0].kind == "cold"

    def test_cold_reset_clears_hm_log(self, system):
        system.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, 0)
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", 0)
        events = [r.event for r in system.kernel.hm.records]
        assert HmEvent.PARTITION_ERROR not in events

    def test_warm_reset_preserves_hm_log(self, system):
        system.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, 0)
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", 1)
        events = [r.event for r in system.kernel.hm.records]
        assert HmEvent.PARTITION_ERROR in events
        assert system.kernel.warm_reset_counter == 1

    def test_schedule_restarts_after_reset(self, system):
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", 0)
        system.run_frames(2)
        assert system.kernel.sched.major_frame_count >= 1
        assert not system.kernel.is_halted()


class TestRevisedKernel:
    def test_invalid_modes_rejected(self, fixed_system):
        for mode in (2, 16, 4294967295):
            assert fixed_system.call("XM_reset_system", mode) == rc.XM_INVALID_PARAM
        assert fixed_system.kernel.reset_log == []

    def test_valid_modes_still_reset(self, fixed_system):
        with pytest.raises(NoReturnFromHypercall):
            fixed_system.call("XM_reset_system", rc.XM_WARM_RESET)
        assert fixed_system.kernel.reset_log[0].kind == "warm"
