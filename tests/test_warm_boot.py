"""Warm-boot snapshot execution: snapshot/restore, identity, fallbacks."""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.executor import CampaignPayload, ResetVerifyError, TestExecutor
from repro.fault.mutant import ArgSpec, TestCallSpec, default_layout
from repro.testbed import build_system
from repro.testbed.dummy import build_dummy_system
from repro.tsim.simulator import SnapshotCache, SnapshotError


def record_key(record):
    """Field-for-field identity, wall time excluded (the only nondeterminism)."""
    data = record.to_dict()
    data.pop("wall_time_s")
    return data


def nominal_spec(test_id="warm#0"):
    return TestCallSpec(
        test_id,
        "XM_mask_irq",
        "Interrupt Management",
        (ArgSpec("irqLine", "1", value=1),),
    )


class TestSimulatorSnapshot:
    def test_snapshot_requires_a_running_system(self):
        sim = build_system()
        with pytest.raises(SnapshotError):
            sim.snapshot()

    def test_restore_resumes_at_capture_time(self):
        sim = build_system(fdir_payload=CampaignPayload(layout=default_layout()))
        kernel = sim.boot()
        sim.run_until(kernel.major_frame_us - 1)
        snapshot = sim.snapshot()
        restored = snapshot.restore()
        assert restored is not sim
        assert restored.now_us == sim.now_us
        restored.run_until(3 * kernel.major_frame_us)
        assert not restored.kernel.is_halted()
        # Frames start at 0, F, 2F and 3F: the restored schedule kept going.
        assert restored.kernel.sched.major_frame_count == 4

    def test_restored_systems_are_independent(self):
        sim = build_system(fdir_payload=CampaignPayload(layout=default_layout()))
        kernel = sim.boot()
        sim.run_until(kernel.major_frame_us - 1)
        snapshot = sim.snapshot()
        first = snapshot.restore()
        first.run_until(2 * kernel.major_frame_us)
        first.kernel.machine.memory.write(0x40001000, b"\xde\xad")
        second = snapshot.restore()
        # The first restore's progress and writes must not leak into the second.
        assert second.now_us == kernel.major_frame_us - 1
        assert second.kernel.machine.memory.read(0x40001000, 2) != b"\xde\xad"

    def test_recycle_then_restore_is_clean(self):
        sim = build_system(fdir_payload=CampaignPayload(layout=default_layout()))
        kernel = sim.boot()
        sim.run_until(kernel.major_frame_us - 1)
        snapshot = sim.snapshot()
        first = snapshot.restore()
        first.kernel.machine.memory.write(0x40001000, b"\xde\xad\xbe\xef")
        snapshot.recycle(first)
        second = snapshot.restore()
        assert second.kernel.machine.memory.read(0x40001000, 4) != b"\xde\xad\xbe\xef"
        second.run_until(3 * kernel.major_frame_us)
        assert not second.kernel.is_halted()

    def test_closure_payloads_are_not_snapshottable(self):
        sim = build_system(fdir_payload=lambda ctx, xm: None)
        kernel = sim.boot()
        sim.run_until(kernel.major_frame_us - 1)
        with pytest.raises(SnapshotError):
            sim.snapshot()


class TestSnapshotCache:
    def test_builds_once_per_key(self):
        cache = SnapshotCache()
        built = []

        def builder():
            built.append(1)
            return object()

        a = cache.get_or_build("k", builder)
        b = cache.get_or_build("k", builder)
        assert a is b
        assert built == [1]
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestExecutorModes:
    def test_custom_system_factory_forces_cold(self):
        executor = TestExecutor(system_factory=build_dummy_system)
        assert not executor.warm_boot

    def test_warm_executor_falls_back_on_unsnapshottable_system(self):
        # warm_boot was requested, but prepare() discovers the snapshot
        # cannot be built and drops to cold without failing the campaign.
        executor = TestExecutor(snapshot_cache=SnapshotCache())
        executor._build_snapshot = lambda: (_ for _ in ()).throw(SnapshotError("x"))
        executor.prepare()
        assert not executor.warm_boot
        record = executor.run(nominal_spec())
        assert record.first_rc == 0

    def test_warm_and_cold_single_test_identical(self):
        spec = nominal_spec()
        warm = TestExecutor(snapshot_cache=SnapshotCache()).run(spec)
        cold = TestExecutor(warm_boot=False).run(spec)
        assert record_key(warm) == record_key(cold)

    def test_warm_reuses_one_boot_across_tests(self):
        cache = SnapshotCache()
        executor = TestExecutor(snapshot_cache=cache)
        for index in range(3):
            executor.run(nominal_spec(f"warm#{index}"))
        assert cache.misses == 1
        assert cache.hits == 2


class TestWarmColdCampaignIdentity:
    """Warm boot must be an optimisation, never a behaviour change."""

    # XM_set_timer carries crash/halt/silent findings; the status call
    # covers the plain expected-error mass.
    SCOPE = ("XM_set_timer", "XM_get_partition_status")

    @pytest.fixture(scope="class")
    def pair(self):
        warm = Campaign(functions=self.SCOPE, warm_boot=True).run()
        cold = Campaign(functions=self.SCOPE, warm_boot=False).run()
        return warm, cold

    def test_records_field_for_field_identical(self, pair):
        warm, cold = pair
        assert [record_key(r) for r in warm.log] == [record_key(r) for r in cold.log]

    def test_classifications_identical(self, pair):
        warm, cold = pair

        def signature(result):
            return [
                (record.test_id, cls.severity, cls.kind, expect.allowed)
                for record, expect, cls in result.classified
            ]

        assert signature(warm) == signature(cold)

    def test_issue_clusters_identical(self, pair):
        warm, cold = pair

        def clusters(result):
            return [
                (i.hypercall, i.kind, i.detail_key, i.case_count,
                 i.matched_vulnerability)
                for i in result.issues
            ]

        assert clusters(warm) == clusters(cold)


class TestDeltaResetCampaignIdentity:
    """Delta reset, full restore and cold boot must agree record for record."""

    SCOPE = ("XM_reset_partition", "XM_get_partition_status", "XM_halt_partition")

    @pytest.fixture(scope="class")
    def trio(self):
        delta = Campaign(functions=self.SCOPE, delta_reset=True).run()
        restore = Campaign(functions=self.SCOPE, delta_reset=False).run()
        cold = Campaign(functions=self.SCOPE, warm_boot=False).run()
        return delta, restore, cold

    def test_records_identical_across_reset_modes(self, trio):
        delta, restore, cold = trio
        keys = [[record_key(r) for r in result.log] for result in trio]
        assert keys[0] == keys[1] == keys[2]

    def test_delta_path_actually_taken(self, trio):
        delta, restore, cold = trio
        delta_modes = delta.execution_stats["reset_modes"]
        # One full restore to seed the live simulator, deltas after that.
        assert delta_modes["restore"] == 1
        assert delta_modes["delta"] == delta.total_tests - 1
        assert restore.execution_stats["reset_modes"] == {
            "restore": restore.total_tests
        }
        assert cold.execution_stats["reset_modes"] == {"cold": cold.total_tests}

    def test_crash_bearing_scope_identical(self):
        # XM_set_timer carries crash/halt findings: crashed simulators
        # must never be reused in place, and the records must still
        # match the always-restore path exactly.
        delta = Campaign(functions=("XM_set_timer",), delta_reset=True).run()
        restore = Campaign(functions=("XM_set_timer",), delta_reset=False).run()
        assert [record_key(r) for r in delta.log] == [
            record_key(r) for r in restore.log
        ]
        assert any(r.sim_crashed for r in delta.log)
        modes = delta.execution_stats["reset_modes"]
        # Every crashed/halted run forces the next acquire to restore.
        assert modes["restore"] > 1

    def test_verify_reset_full_scope_zero_mismatches(self):
        result = Campaign(functions=self.SCOPE, verify_reset=True).run()
        modes = result.execution_stats["reset_modes"]
        assert modes["verified"] == result.total_tests


class TestDeltaResetFallbacks:
    """The reset ladder degrades (delta -> restore) without changing records."""

    def baseline_records(self, specs):
        executor = TestExecutor(snapshot_cache=SnapshotCache(), delta_reset=False)
        return [record_key(executor.run(spec)) for spec in specs]

    def test_journal_overflow_falls_back_to_restore(self):
        specs = [nominal_spec(f"overflow#{i}") for i in range(3)]
        executor = TestExecutor(snapshot_cache=SnapshotCache(), journal_budget=1)
        records = [record_key(executor.run(spec)) for spec in specs]
        assert records == self.baseline_records(specs)
        # Every reset attempt exceeds the 1-byte budget: all acquires
        # are full restores, and each refusal is counted.
        assert executor.reset_stats["delta"] == 0
        assert executor.reset_stats["restore"] == len(specs)
        assert executor.reset_stats["delta_fallbacks"] == len(specs)

    def test_crashed_run_is_never_reused_in_place(self):
        specs = list(Campaign(functions=("XM_set_timer",)).iter_specs())
        executor = TestExecutor(snapshot_cache=SnapshotCache())
        records = [executor.run(spec) for spec in specs]
        crashed = [r.sim_crashed for r in records]
        assert any(crashed)
        assert [record_key(r) for r in records] == self.baseline_records(specs)
        # A crashed run drops the live simulator, so the following test
        # (if any) pays a full restore.
        crashes_followed_by_tests = sum(crashed[:-1])
        assert executor.reset_stats["restore"] >= 1 + crashes_followed_by_tests

    def test_unjournalable_graph_demotes_executor_permanently(self):
        class TaintedSnapshot:
            """Restores carry an object the journal cannot revert."""

            def __init__(self, inner):
                self._inner = inner

            def restore(self):
                sim = self._inner.restore()
                sim.machine.taint = object()  # no __dict__: unjournalable
                return sim

            def recycle(self, sim):
                self._inner.recycle(sim)

        specs = [nominal_spec(f"taint#{i}") for i in range(3)]
        executor = TestExecutor(snapshot_cache=SnapshotCache())
        executor.prepare()
        key = executor._snapshot_key()
        real = executor.snapshot_cache.get_or_build(key, executor._build_snapshot)
        executor.snapshot_cache._snapshots[key] = TaintedSnapshot(real)
        records = [record_key(executor.run(spec)) for spec in specs]
        assert records == self.baseline_records(specs)
        assert executor.delta_reset is False  # demoted for good
        assert executor.reset_stats["delta_fallbacks"] == 1  # not re-attempted
        assert executor.reset_stats["restore"] == len(specs)

    def test_verify_reset_raises_on_divergence(self):
        class LyingExecutor(TestExecutor):
            """The verify reference run reports a different overrun count."""

            def _run_on_snapshot(self, spec, started, snapshot, key, primary, entry=None):
                record = super()._run_on_snapshot(
                    spec, started, snapshot, key, primary, entry
                )
                if not primary:
                    record.overruns += 1
                return record

        executor = LyingExecutor(
            snapshot_cache=SnapshotCache(), verify_reset=True
        )
        with pytest.raises(ResetVerifyError) as err:
            executor.run(nominal_spec())
        assert "overruns" in str(err.value)


class TestSerialParallelResumeIdentity:
    """Satellite: serial, parallel and interrupted+resumed runs agree."""

    SCOPE = ("XM_reset_system",)

    @pytest.fixture(scope="class")
    def serial(self):
        return Campaign(functions=self.SCOPE).run()

    def test_parallel_matches_serial(self, serial):
        parallel = Campaign(functions=self.SCOPE).run(processes=2)
        assert [record_key(r) for r in parallel.log] == [
            record_key(r) for r in serial.log
        ]

    def test_interrupted_then_resumed_matches_serial(self, serial):
        from repro.fault.testlog import CampaignLog

        partial = CampaignLog(serial.log.records[:2])  # the "interrupt"
        resumed = Campaign(functions=self.SCOPE).run(resume_from=partial)
        assert sorted(map(repr, map(record_key, resumed.log))) == sorted(
            map(repr, map(record_key, serial.log))
        )

    def test_all_three_agree_on_analysis(self, serial):
        from repro.fault.testlog import CampaignLog

        parallel = Campaign(functions=self.SCOPE).run(processes=2)
        partial = CampaignLog(serial.log.records[:2])
        resumed = Campaign(functions=self.SCOPE).run(resume_from=partial)

        def analysis(result):
            issues = [
                (i.hypercall, i.kind, i.detail_key, i.case_count,
                 i.matched_vulnerability)
                for i in result.issues
            ]
            severities = sorted(
                (r.test_id, c.severity.value) for r, _e, c in result.classified
            )
            return issues, severities

        assert analysis(serial) == analysis(parallel) == analysis(resumed)
