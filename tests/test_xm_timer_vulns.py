"""The three XM_set_timer findings (XM-ST-1/2/3) end to end."""

import pytest

from repro.tsim.simulator import SimulatorCrash
from repro.xm import rc
from repro.xm.hm import HmEvent

from conftest import BootedSystem

LLONG_MIN = -(2**63)


class TestStackOverflowHalt:
    """XM-ST-1: HW clock + 1us interval -> recursive handler -> XM halt."""

    def test_set_timer_0_1_1_halts_kernel(self, system):
        assert system.call("XM_set_timer", 0, 1, 1) == rc.XM_OK
        system.run_frames(1)
        assert system.kernel.is_halted()
        assert "stack overflow" in (system.kernel.halt_reason or "")

    def test_halt_reported_through_hm_fatal(self, system):
        system.call("XM_set_timer", 0, 1, 1)
        system.run_frames(1)
        fatal = system.kernel.hm.events_of(HmEvent.FATAL_ERROR)
        assert len(fatal) == 1
        assert "timer handler" in fatal[0].detail

    def test_overflow_counter_increments(self, system):
        system.call("XM_set_timer", 0, 1, 1)
        system.run_frames(1)
        assert system.kernel.timemgr.stack_overflows == 1

    def test_simulator_survives_kernel_halt(self, system):
        """The board dies but TSIM lives: logs remain collectable."""
        system.call("XM_set_timer", 0, 1, 1)
        system.run_frames(2)
        assert "XM HALT" in system.sim.machine.uart.transcript()


class TestSimulatorCrash:
    """XM-ST-2: exec clock + 1us interval -> double trap -> TSIM dies."""

    def test_set_timer_1_1_1_crashes_simulator(self, system):
        assert system.call("XM_set_timer", 1, 1, 1) == rc.XM_OK
        with pytest.raises(SimulatorCrash):
            system.run_frames(1)

    def test_crash_reports_error_mode(self, system):
        system.call("XM_set_timer", 1, 1, 1)
        with pytest.raises(SimulatorCrash) as exc:
            system.run_frames(1)
        assert "error mode" in str(exc.value)

    def test_simulator_state_marked_crashed(self, system):
        from repro.tsim.simulator import SimState

        system.call("XM_set_timer", 1, 1, 1)
        with pytest.raises(SimulatorCrash):
            system.run_frames(1)
        assert system.sim.state is SimState.CRASHED


class TestNegativeIntervalSilent:
    """XM-ST-3: negative interval accepted, success returned."""

    @pytest.mark.parametrize("clock", [0, 1])
    def test_llong_min_interval_returns_ok(self, system, clock):
        assert system.call("XM_set_timer", clock, 1, LLONG_MIN) == rc.XM_OK

    def test_negative_interval_behaves_one_shot(self, system):
        system.call("XM_set_timer", 0, 1, LLONG_MIN)
        system.run_frames(1)
        # Exactly one expiry, then disarmed: no crash, no halt.
        assert not system.kernel.is_halted()
        assert system.fdir.timer(0).expirations == 1
        assert not system.fdir.timer(0).armed


class TestNominalTimerBehaviour:
    def test_periodic_timer_fires_each_period(self, system):
        assert system.call("XM_set_timer", 0, 100_000, 100_000) == rc.XM_OK
        system.run_frames(2)  # 500 ms
        # Expiries at 100,200,300,400,500 ms.
        assert system.fdir.timer(0).expirations == 5
        assert not system.kernel.is_halted()

    def test_one_shot_timer(self, system):
        assert system.call("XM_set_timer", 0, 100_000, 0) == rc.XM_OK
        system.run_frames(2)
        assert system.fdir.timer(0).expirations == 1

    def test_timer_sets_virtual_irq(self, system):
        from repro.xm.svc_time import TIMER_VIRQ

        system.call("XM_set_timer", 0, 100_000, 0)
        system.run_frames(1)
        assert system.fdir.virq_pending & (1 << TIMER_VIRQ)

    def test_far_future_timer_does_not_fire(self, system):
        assert system.call("XM_set_timer", 0, 2**62, 1) == rc.XM_OK
        system.run_frames(2)
        assert system.fdir.timer(0).expirations == 0

    def test_expiry_goes_through_irqmp_and_cpu(self, system):
        """Each expiry is a real IRQ-8 trap on the modelled hardware."""
        from repro.sparc.traps import TrapType

        system.call("XM_set_timer", 0, 100_000, 100_000)
        system.run_frames(2)
        expirations = system.fdir.timer(0).expirations
        assert expirations == 5
        assert system.kernel.machine.cpu.taken(TrapType.for_interrupt(8)) == expirations
        # Acknowledged: nothing left pending on the controller.
        assert not system.kernel.machine.irq.is_pending(8)

    def test_exec_clock_timer_nominal(self, system):
        # A generous exec-clock target fires once enough CPU accumulates.
        assert system.call("XM_set_timer", 1, 1000, 1_000_000) == rc.XM_OK
        system.run_frames(2)
        assert not system.kernel.is_halted()


class TestRevisedTimer:
    def test_small_interval_rejected(self, fixed_system):
        for clock in (0, 1):
            assert (
                fixed_system.call("XM_set_timer", clock, 1, 1) == rc.XM_INVALID_PARAM
            )
        fixed_system.run_frames(1)
        assert not fixed_system.kernel.is_halted()

    def test_minimum_interval_boundary(self, fixed_system):
        assert fixed_system.call("XM_set_timer", 0, 1, 49) == rc.XM_INVALID_PARAM
        assert fixed_system.call("XM_set_timer", 0, 1, 50) == rc.XM_OK

    def test_negative_interval_rejected(self, fixed_system):
        assert (
            fixed_system.call("XM_set_timer", 0, 1, LLONG_MIN) == rc.XM_INVALID_PARAM
        )
        assert fixed_system.call("XM_set_timer", 0, 1, -1) == rc.XM_INVALID_PARAM


class TestTimerAcrossReset:
    def test_timer_cancelled_by_system_reset(self):
        system = BootedSystem()
        system.call("XM_set_timer", 0, 200_000, 0)
        from repro.xm.errors import NoReturnFromHypercall

        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", 0)
        system.run_frames(2)
        # The rebuilt partition has no armed timer and saw no expiry.
        assert system.kernel.partitions[0].vtimers == {}
