"""Meta-test: every public module, class and function is documented."""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Application hook overrides inherit their contract from the base class.
HOOK_OVERRIDES = {"on_boot", "on_step", "on_virq", "step"}


def public_items(tree: ast.Module):
    """(name, node) for module/class-level public defs, parent-tracked."""
    items = []

    def visit(parent, in_toplevel: bool) -> None:
        for node in ast.iter_child_nodes(parent):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_") and in_toplevel:
                    items.append((node.name, node))
                # Recurse into classes (methods are public surface);
                # not into function bodies (closures are internal).
                if isinstance(node, ast.ClassDef):
                    visit(node, True)
            elif isinstance(node, (ast.If, ast.Try)):
                visit(node, in_toplevel)

    visit(tree, True)
    return items


def test_every_public_item_has_a_docstring():
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            missing.append(f"{path.relative_to(SRC)}: module")
        for name, node in public_items(tree):
            if name in HOOK_OVERRIDES:
                continue
            if not ast.get_docstring(node):
                missing.append(f"{path.relative_to(SRC)}: {name}")
    assert not missing, "undocumented public items:\n" + "\n".join(missing)


def test_every_module_docstring_is_substantive():
    """Module docstrings are prose, not placeholders."""
    thin = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        doc = ast.get_docstring(tree) or ""
        if len(doc) < 40:
            thin.append(str(path.relative_to(SRC)))
    assert not thin, "thin module docstrings:\n" + "\n".join(thin)
