"""Unit tests for system/partition/time/plan service managers."""

import pytest

from repro.xm import rc
from repro.xm.errors import NoReturnFromHypercall
from repro.xm.partition import PartitionState
from repro.xm.status import XmPartitionStatus, XmPlanStatus, XmSystemStatus


class TestSystemServices:
    def test_get_system_status_writes_struct(self, system):
        addr = system.scratch()
        assert system.call("XM_get_system_status", addr) == rc.XM_OK
        raw = system.fdir.address_space.read(addr, XmSystemStatus.SIZE)
        status = XmSystemStatus.unpack(raw)
        assert status.reset_counter == 0
        assert status.current_plan == 0

    def test_get_system_status_null_pointer(self, system):
        assert system.call("XM_get_system_status", 0) == rc.XM_INVALID_PARAM

    def test_get_system_status_unmapped_pointer(self, system):
        assert system.call("XM_get_system_status", 0x50000000) == rc.XM_INVALID_PARAM

    def test_get_system_status_kernel_pointer_rejected(self, system):
        # Kernel memory is mapped but not granted to the partition.
        assert system.call("XM_get_system_status", 0x40000000) == rc.XM_INVALID_PARAM

    def test_halt_system_does_not_return(self, system):
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_halt_system")
        assert system.kernel.is_halted()


class TestResetSystemDefect:
    """The XM-RS-1/2/3 behaviour on the vulnerable kernel."""

    @pytest.mark.parametrize("mode,kind", [(0, "cold"), (1, "warm")])
    def test_valid_modes(self, system, mode, kind):
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", mode)
        assert system.kernel.reset_log[-1].kind == kind

    @pytest.mark.parametrize("mode", [2, 16])
    def test_invalid_even_modes_cold_reset(self, system, mode):
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", mode)
        assert system.kernel.reset_log[-1].kind == "cold"

    def test_invalid_umax_warm_resets(self, system):
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_reset_system", 4294967295)
        assert system.kernel.reset_log[-1].kind == "warm"


class TestPartitionServices:
    def test_get_partition_status(self, system):
        addr = system.scratch()
        assert system.call("XM_get_partition_status", 1, addr) == rc.XM_OK
        status = XmPartitionStatus.unpack(
            system.fdir.address_space.read(addr, XmPartitionStatus.SIZE)
        )
        assert status.ident == 1

    def test_get_partition_status_self_alias(self, system):
        addr = system.scratch()
        assert system.call("XM_get_partition_status", -1, addr) == rc.XM_OK
        status = XmPartitionStatus.unpack(
            system.fdir.address_space.read(addr, XmPartitionStatus.SIZE)
        )
        assert status.ident == 0

    @pytest.mark.parametrize("bad_id", [-16, 5, 16, 2147483647, -2147483648])
    def test_invalid_partition_ids(self, system, bad_id):
        assert (
            system.call("XM_get_partition_status", bad_id, system.scratch())
            == rc.XM_INVALID_PARAM
        )

    def test_halt_other_partition(self, system):
        assert system.call("XM_halt_partition", 1) == rc.XM_OK
        assert system.kernel.partitions[1].state is PartitionState.HALTED

    def test_halt_self_never_returns(self, system):
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_halt_partition", 0)
        assert system.fdir.state is PartitionState.HALTED

    def test_reset_partition_valid(self, system):
        assert system.call("XM_reset_partition", 1, rc.XM_WARM_RESET, 7) == rc.XM_OK
        target = system.kernel.partitions[1]
        assert target.reset_counter == 1
        assert target.reset_status == 7

    @pytest.mark.parametrize("mode", [2, 16, 4294967295])
    def test_reset_partition_invalid_mode_is_robust(self, system, mode):
        """Unlike XM_reset_system, partition reset validates its mode."""
        assert system.call("XM_reset_partition", 1, mode, 0) == rc.XM_INVALID_PARAM
        assert system.kernel.partitions[1].reset_counter == 0

    def test_suspend_and_resume(self, system):
        assert system.call("XM_suspend_partition", 1) == rc.XM_OK
        assert system.kernel.partitions[1].state is PartitionState.SUSPENDED
        assert system.call("XM_resume_partition", 1) == rc.XM_OK
        assert system.kernel.partitions[1].state is PartitionState.NORMAL

    def test_resume_non_suspended_is_no_action(self, system):
        assert system.call("XM_resume_partition", 1) == rc.XM_NO_ACTION

    def test_suspend_halted_is_no_action(self, system):
        system.call("XM_halt_partition", 1)
        assert system.call("XM_suspend_partition", 1) == rc.XM_NO_ACTION

    def test_shutdown_partition(self, system):
        assert system.call("XM_shutdown_partition", 2) == rc.XM_OK
        assert system.kernel.partitions[2].state is PartitionState.SHUTDOWN

    def test_idle_self_consumes_rest_of_slot(self, system):
        # Outside a slot it is a harmless no-op returning XM_OK.
        assert system.call("XM_idle_self") == rc.XM_OK

    def test_vcpu_services_single_core(self, system):
        assert system.call("XM_suspend_vcpu", 1) == rc.XM_INVALID_PARAM
        assert system.call("XM_resume_vcpu", 4294967295) == rc.XM_INVALID_PARAM
        with pytest.raises(NoReturnFromHypercall):
            system.call("XM_suspend_vcpu", 0)
        assert system.fdir.state is PartitionState.SUSPENDED


class TestTimeServices:
    def test_get_time_hw_clock(self, system):
        addr = system.scratch()
        assert system.call("XM_get_time", rc.XM_HW_CLOCK, addr) == rc.XM_OK
        value = int.from_bytes(system.fdir.address_space.read(addr, 8), "big", signed=True)
        assert value == system.sim.now_us

    def test_get_time_exec_clock(self, system):
        system.fdir.exec_clock_us = 4242
        addr = system.scratch()
        assert system.call("XM_get_time", rc.XM_EXEC_CLOCK, addr) == rc.XM_OK
        value = int.from_bytes(system.fdir.address_space.read(addr, 8), "big", signed=True)
        assert value == 4242

    @pytest.mark.parametrize("clock", [2, 16, 4294967295])
    def test_get_time_invalid_clock(self, system, clock):
        assert system.call("XM_get_time", clock, system.scratch()) == rc.XM_INVALID_PARAM

    def test_get_time_null_pointer(self, system):
        assert system.call("XM_get_time", 0, 0) == rc.XM_INVALID_PARAM

    def test_set_timer_valid_periodic(self, system):
        assert system.call("XM_set_timer", 0, 1_000_000, 1_000_000) == rc.XM_OK
        assert system.fdir.timer(0).armed

    def test_set_timer_invalid_clock(self, system):
        assert system.call("XM_set_timer", 7, 1, 1_000_000) == rc.XM_INVALID_PARAM

    def test_set_timer_disarm_contract(self, system):
        system.call("XM_set_timer", 0, 1_000_000, 1_000_000)
        assert system.call("XM_set_timer", 0, 0, 0) == rc.XM_OK
        assert not system.fdir.timer(0).armed

    def test_set_timer_negative_abstime_disarms(self, system):
        assert system.call("XM_set_timer", 0, -(2**63), 1_000_000) == rc.XM_OK
        assert not system.fdir.timer(0).armed


class TestPlanServices:
    def test_switch_to_existing_plan(self, system):
        assert system.call("XM_switch_sched_plan", 1) == rc.XM_OK
        assert system.kernel.sched.requested_plan_id == 1

    def test_switch_applies_at_frame_boundary(self, system):
        system.call("XM_switch_sched_plan", 1)
        assert system.kernel.sched.current_plan_id == 0
        system.run_frames(2)
        assert system.kernel.sched.current_plan_id == 1

    @pytest.mark.parametrize("plan", [2, 16, 4294967295])
    def test_switch_to_missing_plan(self, system, plan):
        assert system.call("XM_switch_sched_plan", plan) == rc.XM_INVALID_PARAM

    def test_plan_status(self, system):
        addr = system.scratch()
        assert system.call("XM_get_plan_status", addr) == rc.XM_OK
        status = XmPlanStatus.unpack(
            system.fdir.address_space.read(addr, XmPlanStatus.SIZE)
        )
        assert status.current_plan == 0
