"""Tests for the XAL runtime: scratch allocation and libxm wrappers."""

import pytest

from repro.xal.runtime import SCRATCH_SIZE, ScratchAllocator
from repro.xm import rc

from conftest import BootedSystem


class TestScratchAllocator:
    def test_alignment(self):
        alloc = ScratchAllocator(base=0x1000)
        first = alloc.alloc(3)
        second = alloc.alloc(8)
        assert first % 8 == 0
        assert second % 8 == 0
        assert second >= first + 3

    def test_wraps_when_full(self):
        alloc = ScratchAllocator(base=0x1000, size=64)
        alloc.alloc(48)
        wrapped = alloc.alloc(32)
        assert wrapped == 0x1000

    def test_reset(self):
        alloc = ScratchAllocator(base=0x1000)
        alloc.alloc(100)
        alloc.reset()
        assert alloc.alloc(8) == 0x1000

    def test_default_window_size(self):
        alloc = ScratchAllocator(base=0)
        assert alloc.size == SCRATCH_SIZE


class LibxmHarness:
    """Runs a closure inside an FDIR slot with a Libxm binding."""

    @staticmethod
    def run(fn):
        out = {}

        def payload(ctx, xm):
            if "value" not in out:
                out["value"] = fn(ctx, xm)

        system = BootedSystem(fdir_payload=payload)
        system.run_frames(1)
        return out["value"]


class TestLibxmWrappers:
    def test_get_time(self):
        code, value = LibxmHarness.run(lambda ctx, xm: xm.get_time(rc.XM_HW_CLOCK))
        assert code == rc.XM_OK
        assert value >= 0

    def test_get_system_status(self):
        code, status = LibxmHarness.run(lambda ctx, xm: xm.get_system_status())
        assert code == rc.XM_OK
        assert status.reset_counter == 0

    def test_get_partition_status(self):
        code, status = LibxmHarness.run(
            lambda ctx, xm: xm.get_partition_status(1)
        )
        assert code == rc.XM_OK
        assert status.ident == 1

    def test_get_plan_status(self):
        code, status = LibxmHarness.run(lambda ctx, xm: xm.get_plan_status())
        assert code == rc.XM_OK
        assert status.current_plan == 0

    def test_write_console(self):
        def fn(ctx, xm):
            return xm.write_console("from libxm")

        assert LibxmHarness.run(fn) == len("from libxm")

    def test_place_cstring_round_trip(self):
        def fn(ctx, xm):
            addr = xm.place_cstring("HELLO")
            return xm.read_bytes(addr, 6)

        assert LibxmHarness.run(fn) == b"HELLO\0"

    def test_hm_status_and_read(self):
        def fn(ctx, xm):
            from repro.xm.hm import HmEvent

            ctx.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, 0, payload=5)
            code, status = xm.hm_status()
            count, entries = xm.hm_read(4)
            return code, status.unread_events, count, entries[0].payload

        code, unread, count, payload = LibxmHarness.run(fn)
        assert code == rc.XM_OK
        assert unread == 1
        assert count == 1
        assert payload == 5

    def test_sampling_roundtrip_via_channel(self):
        def fn(ctx, xm):
            # Write directly into the channel (as AOCS would), then read
            # through the FDIR port.
            chan = ctx.kernel.ipc.channels["CH_TM_AOCS"]
            chan.store(b"x" * 64, ctx.kernel.sim.now_us)
            port = xm.create_sampling_port("TM_MON", 64, rc.XM_DESTINATION_PORT, 300_000)
            return xm.read_sampling_message(port, 64)

        code, data, valid = LibxmHarness.run(fn)
        assert code == 64
        assert data == b"x" * 64
        assert valid == 1

    def test_queuing_send(self):
        def fn(ctx, xm):
            port = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)
            code = xm.send_queuing_message(port, b"EV" + bytes(10))
            _, status = xm.get_port_status(port)
            return code, status.pending_messages

        code, pending = LibxmHarness.run(fn)
        assert code == rc.XM_OK
        assert pending == 1

    def test_set_timer_wrapper(self):
        def fn(ctx, xm):
            return xm.set_timer(rc.XM_HW_CLOCK, 10_000_000, 1_000_000)

        assert LibxmHarness.run(fn) == rc.XM_OK

    def test_raw_call_unknown(self):
        def fn(ctx, xm):
            return xm.call("XM_bogus")

        assert LibxmHarness.run(fn) == rc.XM_UNKNOWN_HYPERCALL


class TestSlotContext:
    def test_console_through_uart(self):
        def payload(ctx, xm):
            ctx.console("slot message")

        system = BootedSystem(fdir_payload=payload)
        system.run_frames(1)
        assert "slot message" in system.sim.machine.uart.lines("FDIR")

    def test_partition_accessor(self):
        seen = {}

        def payload(ctx, xm):
            seen["name"] = ctx.partition.name

        system = BootedSystem(fdir_payload=payload)
        system.run_frames(1)
        assert seen["name"] == "FDIR"
