"""Unit tests for the CRASH-scale classifier."""

from repro.fault.classify import FailureKind, Severity, classify
from repro.fault.oracle import Expectation
from repro.fault.testlog import Invocation, TestRecord
from repro.xm import rc


def record(**kw) -> TestRecord:
    base = dict(test_id="t", function="XM_x", category="c")
    base.update(kw)
    return TestRecord(**base)


def expect_ok() -> Expectation:
    return Expectation(allowed=frozenset({rc.XM_OK}))


def expect_invalid() -> Expectation:
    return Expectation(allowed=frozenset({rc.XM_INVALID_PARAM}))


class TestSeverityLadder:
    def test_sim_crash_is_catastrophic(self):
        c = classify(record(sim_crashed=True), expect_ok())
        assert c.severity is Severity.CATASTROPHIC
        assert c.kind is FailureKind.SIM_CRASH

    def test_sim_hang_is_restart(self):
        c = classify(record(sim_hung=True), expect_ok())
        assert c.severity is Severity.RESTART

    def test_kernel_halt_is_catastrophic(self):
        c = classify(
            record(kernel_halted=True, halt_reason="stack overflow"), expect_ok()
        )
        assert c.severity is Severity.CATASTROPHIC
        assert "stack overflow" in c.detail

    def test_halt_system_halting_is_not_failure(self):
        c = classify(
            record(
                function="XM_halt_system",
                kernel_halted=True,
                invocations=[Invocation(returned=False)],
            ),
            Expectation(allow_no_return=True),
        )
        assert c.severity is Severity.PASS

    def test_unexpected_reset_is_restart(self):
        c = classify(
            record(resets=[("cold", "XM_reset_system(2)")]), expect_invalid()
        )
        assert c.severity is Severity.RESTART
        assert c.kind is FailureKind.UNEXPECTED_RESET
        assert "cold" in c.detail

    def test_documented_reset_is_pass(self):
        c = classify(
            record(
                function="XM_reset_system",
                resets=[("warm", "XM_reset_system(1)")],
                invocations=[Invocation(returned=False)],
            ),
            Expectation(allow_no_return=True),
        )
        assert c.severity is Severity.PASS

    def test_temporal_violation_is_catastrophic(self):
        c = classify(
            record(
                hm_events=[("TEMPORAL_VIOLATION", 0, "overrun")],
                invocations=[Invocation(returned=True, rc=0)],
            ),
            expect_ok(),
        )
        assert c.severity is Severity.CATASTROPHIC
        assert c.kind is FailureKind.TEMPORAL_VIOLATION

    def test_unhandled_trap_is_abort(self):
        c = classify(
            record(
                hm_events=[("UNHANDLED_TRAP", 0, "data access exception")],
                invocations=[Invocation(returned=False)],
            ),
            expect_invalid(),
        )
        assert c.severity is Severity.ABORT

    def test_mem_protection_is_abort(self):
        c = classify(
            record(hm_events=[("MEM_PROTECTION", 0, "fault")]), expect_ok()
        )
        assert c.severity is Severity.ABORT
        assert c.kind is FailureKind.SPATIAL_VIOLATION

    def test_unexpected_no_return_is_restart(self):
        c = classify(
            record(invocations=[Invocation(returned=False)]), expect_ok()
        )
        assert c.severity is Severity.RESTART
        assert c.kind is FailureKind.NO_RETURN

    def test_expected_no_return_is_pass(self):
        c = classify(
            record(invocations=[Invocation(returned=False)]),
            Expectation(allow_no_return=True),
        )
        assert c.severity is Severity.PASS

    def test_silent_wrong_success(self):
        c = classify(
            record(invocations=[Invocation(returned=True, rc=rc.XM_OK)]),
            expect_invalid(),
        )
        assert c.severity is Severity.SILENT
        assert "XM_OK" in c.detail and "XM_INVALID_PARAM" in c.detail

    def test_hindering_wrong_error(self):
        c = classify(
            record(
                invocations=[Invocation(returned=True, rc=rc.XM_PERM_ERROR)]
            ),
            expect_invalid(),
        )
        assert c.severity is Severity.HINDERING

    def test_pass_on_matching_rc(self):
        c = classify(
            record(invocations=[Invocation(returned=True, rc=rc.XM_OK)]),
            expect_ok(),
        )
        assert c.severity is Severity.PASS
        assert not c.is_failure

    def test_nonneg_expectation_accepts_descriptor(self):
        c = classify(
            record(invocations=[Invocation(returned=True, rc=7)]),
            Expectation(allow_nonneg=True),
        )
        assert c.severity is Severity.PASS

    def test_worst_invocation_wins(self):
        # First invocation clean, second returns a wrong success.
        c = classify(
            record(
                invocations=[
                    Invocation(returned=True, rc=rc.XM_INVALID_PARAM),
                    Invocation(returned=True, rc=rc.XM_OK),
                ]
            ),
            expect_invalid(),
        )
        assert c.severity is Severity.SILENT

    def test_precedence_crash_beats_silent(self):
        c = classify(
            record(
                sim_crashed=True,
                invocations=[Invocation(returned=True, rc=rc.XM_OK)],
            ),
            expect_invalid(),
        )
        assert c.severity is Severity.CATASTROPHIC

    def test_not_invoked_is_pass(self):
        c = classify(record(), expect_ok())
        assert c.severity is Severity.PASS
