"""Sharded batch dispatch: wire codec, shard sizing, identity, supervision."""

import multiprocessing

import pytest

from repro.fault import wire
from repro.fault.campaign import Campaign, _auto_shard_size
from repro.fault.executor import KILL_SPEC_ENV
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.testlog import CampaignLog, Invocation, TestRecord

#: The three hypercalls carrying the paper's findings: 62 tests, 9 issues.
TRIO = ("XM_reset_system", "XM_set_timer", "XM_multicall")

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel execution requires the fork start method",
)


def strip_wall_time(record):
    data = record.to_dict()
    data.pop("wall_time_s")
    # Host-side provenance legitimately differs between runs (the pool
    # shape depends on how many specs were left); the verdict must not.
    data.pop("host_context")
    return data


class TestWireSpecCodec:
    def test_spec_roundtrip(self):
        spec = TestCallSpec(
            "XM_set_timer.abs-1.itv-2#7",
            "XM_set_timer",
            "Time Management",
            (
                ArgSpec("abs_time", "MAX", 2**31 - 1, symbol="INT32_MAX"),
                ArgSpec("interval", "zero", 0),
            ),
        )
        assert wire.spec_from_dict(wire.spec_to_dict(spec)) == spec


class TestWireRecordCodec:
    def make(self):
        return TestRecord(
            test_id="XM_set_timer#3",
            function="XM_set_timer",
            category="Time Management",
            arg_labels=("MAX", "zero"),
            resolved_args=(2**31 - 1, 0),
            invocations=[Invocation(returned=True, rc=-1, note="XM_INVALID_PARAM")],
            hm_events=[("XM_HM_EV_MEM_PROTECTION", 1, "write fault")],
            kernel_version="3.4.0",
            frames=2,
            wall_time_s=0.25,
        )

    def test_full_roundtrip(self):
        record = self.make()
        assert wire.record_from_dict(wire.record_to_dict(record)) == record

    def test_to_dict_covers_every_field(self):
        # record_to_dict is hand-rolled for speed; a new TestRecord
        # field must not silently vanish from logs and the relay.
        from dataclasses import fields

        assert set(wire.record_to_dict(self.make())) == {
            f.name for f in fields(TestRecord)
        }

    def test_relay_roundtrip_is_lossless(self):
        record = self.make()
        assert wire.decode_record(wire.encode_record(record)) == record

    def test_relay_encoding_drops_defaults(self):
        nominal = TestRecord(
            test_id="t", function="f", category="c", kernel_version="3.4.0"
        )
        encoded = wire.encode_record(nominal)
        # Identity fields always travel; untouched defaults never do.
        assert set(encoded) == {"test_id", "function", "category", "kernel_version"}
        assert wire.decode_record(encoded) == nominal

    def test_relay_encoding_is_smaller(self):
        import pickle

        record = self.make()
        sparse = len(pickle.dumps(wire.encode_record(record)))
        full = len(pickle.dumps(wire.record_to_dict(record)))
        assert sparse < full


class TestSpecTable:
    def test_table_matches_campaign_order(self):
        campaign = Campaign(functions=TRIO)
        table = wire.build_spec_table(campaign._wire_recipe())
        assert table == list(campaign.iter_specs())

    def test_total_mismatch_fails_loudly(self):
        campaign = Campaign(functions=TRIO)
        recipe = campaign._wire_recipe()
        bad = wire.SuiteRecipe(
            model=recipe.model,
            dictionaries=recipe.dictionaries,
            strategy=recipe.strategy,
            functions=recipe.functions,
            total=recipe.total + 1,
        )
        with pytest.raises(RuntimeError, match="spec table mismatch"):
            wire.build_spec_table(bad)


class TestAutoShardSize:
    def test_amortises_dispatch_on_large_campaigns(self):
        # 2864 specs, 4 workers: shards of 16+ with ~8 per worker.
        assert _auto_shard_size(2864, 4) == 2864 // 32

    def test_floor_of_sixteen(self):
        assert _auto_shard_size(200, 4) == 16

    def test_small_campaign_still_uses_every_worker(self):
        # 8 specs across 4 workers must not end up in one 16-spec shard.
        assert _auto_shard_size(8, 4) == 2

    def test_degenerate_sizes(self):
        assert _auto_shard_size(0, 4) == 1
        assert _auto_shard_size(1, 1) == 1


class TestShardSizeValidation:
    def test_zero_shard_size_rejected(self):
        with pytest.raises(ValueError, match="shard_size"):
            Campaign(functions=("XM_reset_system",)).run(processes=2, shard_size=0)


@needs_fork
class TestShardIdentity:
    """Serial, per-spec and sharded dispatch must be indistinguishable."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return Campaign(functions=TRIO)

    @pytest.fixture(scope="class")
    def serial(self, campaign):
        return campaign.run()

    def test_sharded_equals_serial(self, campaign, serial):
        sharded = campaign.run(processes=2)
        assert [strip_wall_time(r) for r in sharded.log] == [
            strip_wall_time(r) for r in serial.log
        ]

    def test_shard_size_one_equals_auto(self, campaign, serial):
        per_spec = campaign.run(processes=2, shard_size=1)
        assert [strip_wall_time(r) for r in per_spec.log] == [
            strip_wall_time(r) for r in serial.log
        ]

    def test_oversized_shard_equals_serial(self, campaign, serial):
        # One shard bigger than the whole campaign: a single worker runs
        # everything in one batch.
        giant = campaign.run(processes=2, shard_size=1000)
        assert [strip_wall_time(r) for r in giant.log] == [
            strip_wall_time(r) for r in serial.log
        ]


@needs_fork
class TestKillMidShard:
    """A worker death mid-shard loses exactly its own test, nothing else."""

    def run_with_kill(self, campaign, victim_id, monkeypatch, **kwargs):
        monkeypatch.setenv(KILL_SPEC_ENV, victim_id)
        return campaign.run(processes=2, **kwargs)

    def test_exactly_one_worker_killed(self, monkeypatch):
        campaign = Campaign(functions=TRIO)
        specs = list(campaign.iter_specs())
        baseline = campaign.run(processes=2)
        victim = [s for s in specs if s.function == "XM_set_timer"][5]

        result = self.run_with_kill(campaign, victim.test_id, monkeypatch)
        killed = [r for r in result.log if r.worker_killed]
        assert [r.test_id for r in killed] == [victim.test_id]
        assert result.total_tests == baseline.total_tests
        survivors = {
            r.test_id: strip_wall_time(r) for r in result.log if not r.worker_killed
        }
        expected = {
            r.test_id: strip_wall_time(r)
            for r in baseline.log
            if r.test_id != victim.test_id
        }
        assert survivors == expected

    def test_kill_on_first_spec_of_first_shard(self, monkeypatch):
        campaign = Campaign(functions=TRIO)
        victim = next(campaign.iter_specs())
        result = self.run_with_kill(campaign, victim.test_id, monkeypatch)
        assert [r.test_id for r in result.log if r.worker_killed] == [victim.test_id]
        assert result.total_tests == 62

    def test_kill_with_explicit_shard_size(self, monkeypatch):
        campaign = Campaign(functions=TRIO)
        victim = list(campaign.iter_specs())[20]
        result = self.run_with_kill(
            campaign, victim.test_id, monkeypatch, shard_size=7
        )
        assert [r.test_id for r in result.log if r.worker_killed] == [victim.test_id]
        assert result.total_tests == 62


@needs_fork
class TestShardedResume:
    def test_interrupted_sharded_run_resumes_losslessly(self, tmp_path):
        campaign = Campaign(functions=TRIO)
        baseline = campaign.run(processes=2)
        path = tmp_path / "sharded.jsonl"

        def interrupt(done, total, record):
            if done == 15:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(
                processes=2, progress=interrupt, log_path=path, shard_size=4
            )
        partial = CampaignLog.load(path)
        assert 1 <= len(partial) < baseline.total_tests

        resumed = campaign.run(processes=2, resume_from=partial, log_path=path)
        assert resumed.total_tests == baseline.total_tests == 62
        assert [strip_wall_time(r) for r in resumed.log] == [
            strip_wall_time(r) for r in baseline.log
        ]
        assert len(CampaignLog.load(path)) == baseline.total_tests


@needs_fork
class TestProgressMonotonicity:
    def test_progress_counts_every_test_once_and_in_order(self):
        campaign = Campaign(functions=TRIO)
        calls = []

        def progress(done, total, record):
            calls.append((done, total, record.test_id))

        result = campaign.run(processes=2, progress=progress)
        assert [done for done, _total, _id in calls] == list(
            range(1, result.total_tests + 1)
        )
        assert all(total == result.total_tests for _done, total, _id in calls)
        seen = [test_id for _done, _total, test_id in calls]
        assert len(set(seen)) == len(seen) == result.total_tests
