"""Tests for state-based stress testing and the beta Hindering defect."""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.classify import FailureKind, Severity
from repro.fault.phantom import PhantomState
from repro.fault.stress import StressExecutor, run_stress_comparison
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.xm import rc
from repro.xm.vulns import BETA_VERSION, KernelFeatures


class TestBetaHinderingDefect:
    def test_beta_feature_flag(self):
        assert KernelFeatures.for_version(BETA_VERSION).hm_seek_wrong_error_code
        assert not KernelFeatures.for_version("3.4.0").hm_seek_wrong_error_code

    def test_beta_returns_wrong_error_code(self):
        from conftest import BootedSystem

        system = BootedSystem(version=BETA_VERSION)
        assert system.call("XM_hm_seek", 0, 3) == rc.XM_NO_ACTION

    def test_campaign_detects_hindering(self):
        result = Campaign(
            functions=("XM_hm_seek",), kernel_version=BETA_VERSION
        ).run()
        hindering = [
            i for i in result.issues if i.severity is Severity.HINDERING
        ]
        assert hindering
        assert all(i.kind is FailureKind.WRONG_ERROR for i in hindering)

    def test_release_kernel_has_no_hindering(self):
        result = Campaign(functions=("XM_hm_seek",)).run()
        assert result.issue_count() == 0

    def test_beta_keeps_the_nine_paper_findings(self):
        result = Campaign(
            functions=("XM_reset_system",), kernel_version=BETA_VERSION
        ).run()
        assert result.issue_count() == 3


class TestStressExecutor:
    def test_state_applied_before_call(self):
        spec = TestCallSpec(
            "s#0",
            "XM_hm_status",
            "Health Monitor Management",
            (ArgSpec("status", "VALID", symbol="valid_buffer"),),
        )
        executor = StressExecutor(PhantomState.HM_PRESSURE)
        record = executor.run(spec)
        assert record.first_rc == rc.XM_OK
        # The HM log was pre-filled by the state setter.
        assert len(record.hm_events) > 100

    def test_nominal_state_equals_plain_executor(self):
        from repro.fault.executor import TestExecutor

        spec = TestCallSpec(
            "s#1",
            "XM_mask_irq",
            "Interrupt Management",
            (ArgSpec("irqLine", "1", value=1),),
        )
        stressed = StressExecutor(PhantomState.NOMINAL).run(spec)
        plain = TestExecutor().run(spec)
        assert stressed.first_rc == plain.first_rc
        assert stressed.never_returned == plain.never_returned


class TestStressComparison:
    @pytest.fixture(scope="class")
    def hm_pressure(self):
        return run_stress_comparison(
            PhantomState.HM_PRESSURE,
            functions=("XM_hm_seek", "XM_hm_read", "XM_hm_status"),
        )

    def test_hm_seek_offsets_become_state_sensitive(self, hm_pressure):
        """With the log pre-filled, offsets the quiet-system oracle
        rejects succeed: the §V context-dependence, made measurable."""
        sensitive = {s.function for s in hm_pressure.sensitivities}
        assert "XM_hm_seek" in sensitive

    def test_sensitivities_are_minority(self, hm_pressure):
        assert 0 < len(hm_pressure.sensitivities) < hm_pressure.nominal.total_tests
        assert hm_pressure.stable_tests > 0

    def test_sensitivity_directions(self, hm_pressure):
        # All hm_seek divergences move Pass -> Silent (oracle context).
        for s in hm_pressure.sensitivities:
            assert s.nominal.severity is Severity.PASS
            assert not s.got_worse or s.stressed.is_failure

    def test_vulnerabilities_stable_under_stress(self):
        comparison = run_stress_comparison(
            PhantomState.IPC_SATURATED, functions=("XM_reset_system",)
        )
        # The reset findings fire regardless of IPC state.
        assert comparison.nominal.issue_count() == 3
        assert comparison.sensitivities == []

    def test_degraded_partitions_do_not_change_partition_mgmt(self):
        comparison = run_stress_comparison(
            PhantomState.PARTITIONS_DEGRADED,
            functions=("XM_halt_partition", "XM_resume_partition"),
        )
        # The oracle already allows the state-dependent XM_NO_ACTION.
        assert comparison.sensitivities == []
