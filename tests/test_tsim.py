"""Unit tests for the event queue and target simulator."""

import pytest

from repro.tsim import (
    EventQueue,
    PartitionImage,
    Simulator,
    SimulatorHang,
    SystemImage,
    TargetMachine,
)
from repro.tsim.simulator import SimState


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.schedule(20, lambda t: order.append("b"))
        q.schedule(10, lambda t: order.append("a"))
        while q:
            ev = q.pop()
            ev.callback(ev.time_us)
        assert order == ["a", "b"]

    def test_fifo_within_same_time(self):
        q = EventQueue()
        order = []
        for tag in "abc":
            q.schedule(5, lambda t, tag=tag: order.append(tag))
        while q:
            ev = q.pop()
            ev.callback(ev.time_us)
        assert order == ["a", "b", "c"]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        ev = q.schedule(1, lambda t: None)
        q.schedule(2, lambda t: None)
        ev.cancel()
        assert len(q) == 1
        assert q.pop().time_us == 2

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(7, lambda t: None)
        assert q.peek_time() == 7

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda t: None)

    def test_clear(self):
        q = EventQueue()
        q.schedule(1, lambda t: None)
        q.clear()
        assert not q


class FakeKernel:
    """Minimal KernelProtocol implementation for simulator tests."""

    major_frame_us = 1000

    def __init__(self, machine, sim):
        self.sim = sim
        self.halted = False
        self.ticks = 0

    def boot(self):
        self.sim.schedule_at(0, self._tick, name="tick")

    def _tick(self, now):
        self.ticks += 1
        if not self.halted:
            self.sim.schedule_after(100, self._tick, name="tick")

    def is_halted(self):
        return self.halted


def make_sim(kernel_cls=FakeKernel, **kw):
    image = SystemImage(kernel_factory=kernel_cls)
    return Simulator(TargetMachine.leon3(), image, **kw)


class TestSimulator:
    def test_boot_and_run_until(self):
        sim = make_sim()
        kernel = sim.boot()
        sim.run_until(1000)
        assert sim.now_us == 1000
        assert kernel.ticks == 11  # t = 0, 100, ..., 1000

    def test_run_major_frames(self):
        sim = make_sim()
        sim.boot()
        sim.run_major_frames(3)
        assert sim.now_us == 3000

    def test_double_boot_rejected(self):
        sim = make_sim()
        sim.boot()
        with pytest.raises(RuntimeError):
            sim.boot()

    def test_run_before_boot_rejected(self):
        with pytest.raises(RuntimeError):
            make_sim().run_until(10)

    def test_halted_kernel_stops_run(self):
        sim = make_sim()
        kernel = sim.boot()
        kernel.halted = True
        sim.run_until(10_000)
        assert sim.state is SimState.STOPPED
        assert kernel.ticks <= 1

    def test_schedule_into_past_rejected(self):
        sim = make_sim()
        sim.boot()
        sim.run_until(500)
        with pytest.raises(ValueError):
            sim.schedule_at(100, lambda t: None)

    def test_event_budget_hang_detection(self):
        sim = make_sim(event_budget=50)
        sim.boot()
        with pytest.raises(SimulatorHang):
            sim.run_until(100_000)
        assert sim.state is SimState.HUNG

    def test_partition_image_duplicates_rejected(self):
        image = SystemImage(kernel_factory=FakeKernel)
        image.add_partition(PartitionImage("A", app_factory=dict))
        with pytest.raises(ValueError):
            image.add_partition(PartitionImage("A", app_factory=dict))
        assert image.partition_names() == ["A"]

    def test_determinism_same_tick_counts(self):
        runs = []
        for _ in range(2):
            sim = make_sim()
            kernel = sim.boot()
            sim.run_until(12345)
            runs.append((kernel.ticks, sim.dispatched_events))
        assert runs[0] == runs[1]
