"""Unit tests for the fixed-width integer emulation."""

import pytest

from repro.xtypes import (
    XM_S8,
    XM_S16,
    XM_S32,
    XM_S64,
    XM_U8,
    XM_U16,
    XM_U32,
    XM_U64,
    IntTypeDescriptor,
    XmInt,
)


class TestDescriptorRanges:
    def test_u8_range(self):
        assert XM_U8.min == 0
        assert XM_U8.max == 255

    def test_s8_range(self):
        assert XM_S8.min == -128
        assert XM_S8.max == 127

    def test_u16_range(self):
        assert XM_U16.max == 65535

    def test_s16_range(self):
        assert XM_S16.min == -32768

    def test_u32_range(self):
        assert XM_U32.max == 4294967295

    def test_s32_range(self):
        assert XM_S32.min == -2147483648
        assert XM_S32.max == 2147483647

    def test_u64_range(self):
        assert XM_U64.max == 2**64 - 1

    def test_s64_range(self):
        assert XM_S64.min == -(2**63)
        assert XM_S64.max == 2**63 - 1

    def test_size_bytes(self):
        assert XM_U8.size_bytes == 1
        assert XM_U32.size_bytes == 4
        assert XM_S64.size_bytes == 8

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntTypeDescriptor("bad", 12, False, "nope")


class TestConversion:
    def test_unsigned_wraps_modulo(self):
        assert XM_U8.convert(256) == 0
        assert XM_U8.convert(257) == 1
        assert XM_U8.convert(-1) == 255

    def test_signed_wraps_twos_complement(self):
        assert XM_S8.convert(128) == -128
        assert XM_S8.convert(255) == -1
        assert XM_S8.convert(-129) == 127

    def test_identity_inside_range(self):
        for v in (-2147483648, -1, 0, 1, 2147483647):
            assert XM_S32.convert(v) == v

    def test_u32_all_ones(self):
        assert XM_U32.convert(-1) == 4294967295

    def test_contains(self):
        assert XM_S32.contains(2147483647)
        assert not XM_S32.contains(2147483648)
        assert not XM_U32.contains(-1)

    def test_to_unsigned_bit_pattern(self):
        assert XM_S8.to_unsigned(-1) == 0xFF
        assert XM_S32.to_unsigned(-2147483648) == 0x80000000

    def test_boundary_values_signed(self):
        assert XM_S16.boundary_values() == (-32768, -1, 0, 1, 32767)

    def test_boundary_values_unsigned(self):
        assert XM_U16.boundary_values() == (0, 1, 65535)

    def test_range_probes_include_off_by_one(self):
        probes = list(XM_U8.iter_range_probes())
        assert -1 in probes and 256 in probes


class TestXmInt:
    def test_construction_converts(self):
        assert XmInt(XM_U8, 300).value == 44

    def test_immutable(self):
        x = XmInt(XM_U8, 1)
        with pytest.raises(AttributeError):
            x.value = 2  # type: ignore[misc]

    def test_add_wraps(self):
        assert (XmInt(XM_U8, 255) + 1).value == 0

    def test_sub_wraps(self):
        assert (XmInt(XM_U8, 0) - 1).value == 255

    def test_mul_wraps(self):
        assert (XmInt(XM_U16, 400) * 400).value == (400 * 400) % 65536

    def test_neg_min_signed_is_itself(self):
        # -INT_MIN overflows back to INT_MIN in two's complement.
        assert (-XmInt(XM_S32, -2147483648)).value == -2147483648

    def test_bitwise_ops_on_raw(self):
        assert (XmInt(XM_S8, -1) & 0x0F).value == 0x0F
        assert (XmInt(XM_U8, 0xF0) | 0x0F).value == 0xFF
        assert (XmInt(XM_U8, 0xFF) ^ 0xFF).value == 0

    def test_shift_left_wraps(self):
        assert (XmInt(XM_U8, 0x81) << 1).value == 0x02

    def test_arithmetic_shift_right_signed(self):
        assert (XmInt(XM_S8, -2) >> 1).value == -1

    def test_equality_with_int_and_xmint(self):
        assert XmInt(XM_U8, 5) == 5
        assert XmInt(XM_U8, 5) == XmInt(XM_U8, 5)
        assert XmInt(XM_U8, 5) != XmInt(XM_S8, 5)

    def test_ordering(self):
        assert XmInt(XM_S8, -1) < 0
        assert XmInt(XM_U8, 200) >= 200

    def test_hash_consistent(self):
        assert hash(XmInt(XM_U8, 7)) == hash(XmInt(XM_U8, 263))

    def test_int_and_index(self):
        assert int(XmInt(XM_S8, -5)) == -5
        assert [10, 20, 30][XmInt(XM_U8, 1)] == 20

    def test_raw_of_negative(self):
        assert XmInt(XM_S16, -1).raw == 0xFFFF
