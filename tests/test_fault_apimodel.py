"""Tests for the API model and its consistency with the kernel table."""

import pytest

from repro.fault.apimodel import (
    ApiFunction,
    ApiModel,
    ApiParameter,
    api_model_from_table,
    category_order,
)
from repro.xm.api import (
    HYPERCALL_TABLE,
    Category,
    by_category,
    hypercall_by_name,
    hypercall_by_number,
    parameterless_hypercalls,
    tested_hypercalls,
    untested_hypercalls,
)


class TestKernelTable:
    def test_sixty_one_hypercalls(self):
        assert len(HYPERCALL_TABLE) == 61

    def test_numbers_unique_and_dense(self):
        numbers = [h.number for h in HYPERCALL_TABLE]
        assert len(set(numbers)) == 61
        assert numbers == sorted(numbers)

    def test_lookup_by_name_and_number(self):
        hdef = hypercall_by_name("XM_set_timer")
        assert hypercall_by_number(hdef.number) is hdef
        assert hypercall_by_number(9999) is None
        with pytest.raises(KeyError):
            hypercall_by_name("XM_nothing")

    def test_table3_category_totals(self):
        expected = {
            Category.SYSTEM: (3, 2),
            Category.PARTITION: (10, 6),
            Category.TIME: (2, 2),
            Category.PLAN: (2, 1),
            Category.IPC: (10, 8),
            Category.MEMORY: (2, 1),
            Category.HM: (5, 3),
            Category.TRACE: (5, 4),
            Category.IRQ: (5, 4),
            Category.MISC: (5, 3),
            Category.SPARC: (12, 5),
        }
        groups = by_category()
        for category, (total, tested) in expected.items():
            calls = groups[category]
            assert len(calls) == total, category
            assert sum(1 for c in calls if c.tested) == tested, category

    def test_scope_arithmetic(self):
        assert len(tested_hypercalls()) == 39
        assert len(untested_hypercalls()) == 22
        assert len(parameterless_hypercalls()) == 10

    def test_parameterless_are_all_untested(self):
        for hdef in parameterless_hypercalls():
            assert not hdef.tested

    def test_tested_calls_have_params(self):
        for hdef in tested_hypercalls():
            assert hdef.has_params

    def test_untested_have_reasons(self):
        for hdef in untested_hypercalls():
            assert hdef.untested_reason

    def test_system_only_flags(self):
        assert hypercall_by_name("XM_reset_system").system_only
        assert hypercall_by_name("XM_memory_copy").system_only
        assert not hypercall_by_name("XM_get_time").system_only

    def test_services_are_unique(self):
        services = [h.service for h in HYPERCALL_TABLE]
        assert len(set(services)) == len(services)

    def test_definition_invariants_enforced(self):
        from repro.xm.api import HypercallDef, ParamDef

        with pytest.raises(ValueError, match="need a reason"):
            HypercallDef(200, "X", Category.MISC, (), "m.s", tested=False)
        with pytest.raises(ValueError, match="parameter-less"):
            HypercallDef(201, "Y", Category.MISC, (), "m.s", tested=True)
        del ParamDef


class TestApiModel:
    def test_model_mirrors_table(self):
        model = api_model_from_table()
        assert len(model) == 61
        assert len(model.tested_functions()) == 39
        assert len(model.parameterless_functions()) == 10

    def test_duplicate_add_rejected(self):
        model = ApiModel("k")
        fn = ApiFunction("F", "xm_s32_t", (ApiParameter("x", "xm_u32_t"),))
        model.add(fn)
        with pytest.raises(ValueError, match="duplicate"):
            model.add(fn)

    def test_lookup_missing(self):
        with pytest.raises(KeyError, match="not in model"):
            ApiModel("k").lookup("F")

    def test_by_category_covers_order(self):
        model = api_model_from_table()
        assert set(model.by_category()) == set(category_order())

    def test_category_order_matches_table3(self):
        assert category_order()[0] == "System Management"
        assert category_order()[-1] == "Sparc V8 Specific"

    def test_dictionary_key_fallback(self):
        param = ApiParameter("x", "xmTime_t")
        assert param.dictionary_key == "xmTime_t"
        hinted = ApiParameter("y", "xm_u32_t", dictionary="clock_id")
        assert hinted.dictionary_key == "clock_id"
