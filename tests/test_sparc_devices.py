"""Unit tests for traps, CPU state, IRQ controller, timers, UART, I/O bus."""

import pytest

from repro.sparc import (
    CpuState,
    GpTimerUnit,
    IoBus,
    IoDevice,
    IoFault,
    IrqController,
    ProcessorErrorMode,
    Trap,
    TrapType,
    Uart,
)


class TestTraps:
    def test_trap_number(self):
        assert Trap(TrapType.DATA_ACCESS_EXCEPTION).number == 0x09

    def test_interrupt_vector_mapping(self):
        assert TrapType.for_interrupt(1) == 0x11
        assert TrapType.for_interrupt(15) == 0x1F

    def test_interrupt_line_bounds(self):
        with pytest.raises(ValueError):
            TrapType.for_interrupt(0)
        with pytest.raises(ValueError):
            TrapType.for_interrupt(16)

    def test_trap_message_includes_address(self):
        t = Trap(TrapType.DATA_ACCESS_EXCEPTION, "bad read", address=0xDEAD)
        assert "0x0000dead" in str(t)


class TestCpuState:
    def test_nominal_trap_entry_exit(self):
        cpu = CpuState()
        cpu.enter_trap(Trap(TrapType.DATA_ACCESS_EXCEPTION))
        assert not cpu.traps_enabled
        assert cpu.trap_depth == 1
        cpu.exit_trap()
        assert cpu.traps_enabled
        assert cpu.trap_depth == 0

    def test_double_trap_is_error_mode(self):
        cpu = CpuState()
        cpu.enter_trap(Trap(TrapType.for_interrupt(8)))
        with pytest.raises(ProcessorErrorMode):
            cpu.enter_trap(Trap(TrapType.for_interrupt(8)))

    def test_exit_without_entry_is_programming_error(self):
        with pytest.raises(RuntimeError):
            CpuState().exit_trap()

    def test_interrupt_acceptance_honours_pil(self):
        cpu = CpuState()
        cpu.pil = 8
        assert not cpu.can_take_interrupt(8)
        assert cpu.can_take_interrupt(9)

    def test_history_counts(self):
        cpu = CpuState()
        cpu.take(Trap(TrapType.DATA_ACCESS_EXCEPTION))
        cpu.take(Trap(TrapType.DATA_ACCESS_EXCEPTION))
        assert cpu.taken(TrapType.DATA_ACCESS_EXCEPTION) == 2

    def test_reset_restores_power_on_state(self):
        cpu = CpuState()
        cpu.enter_trap(Trap(TrapType.DATA_ACCESS_EXCEPTION))
        cpu.reset()
        assert cpu.traps_enabled and cpu.trap_depth == 0 and not cpu.history


class TestIrqController:
    def test_raise_and_deliver_highest_first(self):
        irq = IrqController()
        irq.unmask(3)
        irq.unmask(9)
        irq.raise_irq(3)
        irq.raise_irq(9)
        assert irq.acknowledge() == 9
        assert irq.acknowledge() == 3
        assert irq.acknowledge() is None

    def test_masked_lines_not_delivered(self):
        irq = IrqController()
        irq.raise_irq(5)
        assert irq.next_deliverable() is None
        irq.unmask(5)
        assert irq.next_deliverable() == 5

    def test_delivery_hook_fires_on_unmask(self):
        irq = IrqController()
        seen = []
        irq.set_delivery_hook(seen.append)
        irq.raise_irq(4)
        assert seen == []
        irq.unmask(4)
        assert seen == [4]

    def test_line_bounds(self):
        irq = IrqController()
        with pytest.raises(ValueError):
            irq.raise_irq(0)
        with pytest.raises(ValueError):
            irq.raise_irq(16)

    def test_reset_clears_everything(self):
        irq = IrqController()
        irq.unmask(2)
        irq.raise_irq(2)
        irq.reset()
        assert irq.pending_word == 0 and irq.mask_word == 0

    def test_word_registers_mask_bit0(self):
        irq = IrqController()
        irq.set_mask_word(0xFFFF)
        assert irq.mask_word == 0xFFFE


class TestGpTimer:
    def test_leon3_default_has_two_channels(self):
        unit = GpTimerUnit.leon3_default()
        assert len(unit.channels) == 2
        assert unit.channel(0).irq_line == 8

    def test_arm_and_expire(self):
        unit = GpTimerUnit.leon3_default()
        fired = []
        unit.channel(0).arm(100, fired.append)
        assert unit.next_deadline()[0] == 100
        assert unit.expire_due(99) == 0
        assert unit.expire_due(100) == 1
        assert fired == [100]
        assert not unit.channel(0).armed

    def test_expire_disarms_before_callback(self):
        unit = GpTimerUnit.leon3_default()
        timer = unit.channel(0)

        def rearm(now):
            timer.arm(now + 50, rearm)

        timer.arm(10, rearm)
        unit.expire_due(10)
        assert timer.deadline_us == 60

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            GpTimerUnit.leon3_default().channel(0).arm(-1, lambda t: None)

    def test_reset_disarms_all(self):
        unit = GpTimerUnit.leon3_default()
        unit.channel(0).arm(5, lambda t: None)
        unit.reset()
        assert unit.next_deadline() is None


class TestUart:
    def test_line_buffering(self):
        uart = Uart()
        uart.write("hel")
        uart.write("lo\nworld\n", now_us=5)
        assert uart.lines() == ["hello", "world"]

    def test_sources_kept_separate(self):
        uart = Uart()
        uart.write("a", source="p0")
        uart.write("b\n", source="p1")
        uart.write("c\n", source="p0")
        assert uart.lines("p0") == ["ac"]
        assert uart.lines("p1") == ["b"]

    def test_flush_emits_partial(self):
        uart = Uart()
        uart.write("partial", source="k")
        uart.flush()
        assert uart.lines() == ["partial"]

    def test_transcript_and_clear(self):
        uart = Uart()
        uart.write("x\n")
        assert uart.transcript() == "x"
        uart.clear()
        assert uart.lines() == []


class TestIoBus:
    def make_bus(self):
        bus = IoBus()
        store = {}
        bus.attach(
            IoDevice(
                "dev0",
                base=0x80000000,
                size=0x100,
                read_reg=lambda off: store.get(off, 0),
                write_reg=store.__setitem__,
                allowed={"p0"},
            )
        )
        return bus

    def test_read_write_roundtrip(self):
        bus = self.make_bus()
        bus.write(0x80000010, 42)
        assert bus.read(0x80000010) == 42

    def test_unmapped_faults(self):
        bus = self.make_bus()
        with pytest.raises(IoFault, match="unmapped"):
            bus.read(0x90000000)

    def test_context_permissions(self):
        bus = self.make_bus()
        bus.write(0x80000000, 1, context="p0")
        with pytest.raises(IoFault, match="forbidden"):
            bus.read(0x80000000, context="p1")
        assert bus.read(0x80000000, context="kernel") == 1

    def test_overlapping_windows_rejected(self):
        bus = self.make_bus()
        with pytest.raises(ValueError, match="overlap"):
            bus.attach(
                IoDevice("dev1", 0x80000080, 0x100, lambda o: 0, lambda o, v: None)
            )
