"""Tests for CSV/Markdown exports and version comparison."""

import csv
import io

import pytest

from repro.fault.campaign import Campaign
from repro.fault.export import (
    compare_versions,
    issues_csv,
    log_csv,
    table3_csv,
    table3_markdown,
)
from repro.xm.vulns import FIXED_VERSION

SCOPE = ("XM_reset_system", "XM_multicall")


@pytest.fixture(scope="module")
def result():
    return Campaign(functions=SCOPE).run()


@pytest.fixture(scope="module")
def fixed_result():
    return Campaign(functions=SCOPE, kernel_version=FIXED_VERSION).run()


class TestCsvExports:
    def test_table3_csv_parses(self, result):
        rows = list(csv.DictReader(io.StringIO(table3_csv(result))))
        assert len(rows) == 12  # 11 categories + total
        total = rows[-1]
        assert total["category"] == "Total"
        assert total["tests"] == "30"
        assert total["raised_issues"] == "6"

    def test_issues_csv(self, result):
        rows = list(csv.DictReader(io.StringIO(issues_csv(result))))
        assert len(rows) == 6
        idents = {row["known_id"] for row in rows}
        assert "XM-RS-1" in idents and "XM-MC-3" in idents

    def test_log_csv_one_row_per_test(self, result):
        rows = list(csv.DictReader(io.StringIO(log_csv(result.log))))
        assert len(rows) == result.total_tests
        crash_free = [r for r in rows if r["function"] == "XM_reset_system"]
        assert all(r["sim_crashed"] == "0" for r in crash_free)

    def test_log_csv_records_rc_names(self, result):
        rows = list(csv.DictReader(io.StringIO(log_csv(result.log))))
        by_id = {row["test_id"]: row for row in rows}
        ok_reset = by_id["XM_reset_system#0000"]
        assert ok_reset["first_rc"] == ""  # never returned (reset)
        assert ok_reset["resets"] != "0"


class TestMarkdownExports:
    def test_table3_markdown_shape(self, result):
        text = table3_markdown(result)
        lines = text.splitlines()
        assert lines[0].startswith("| Hypercall category |")
        assert lines[1].startswith("|---")
        assert "**Total**" in lines[-1]
        assert len(lines) == 2 + 12


class TestVersionComparison:
    def test_fixed_issues_identified(self, result, fixed_result):
        comparison = compare_versions(result, fixed_result)
        fixed = comparison.fixed_issue_ids()
        assert {"XM-RS-1", "XM-RS-2", "XM-RS-3", "XM-MC-1", "XM-MC-2", "XM-MC-3"} == fixed
        assert comparison.regressed_issue_ids() == set()

    def test_markdown_render(self, result, fixed_result):
        text = compare_versions(result, fixed_result).markdown()
        assert "XtratuM 3.4.0" in text and "XtratuM 3.4.1" in text
        assert "| issues | 6 | 0 |" in text
        assert "regressed" not in text

    def test_regression_direction(self, result, fixed_result):
        backwards = compare_versions(fixed_result, result)
        assert backwards.regressed_issue_ids()
        assert "regressed" in backwards.markdown()


def test_lifecycle_example_runs():
    import subprocess
    import sys
    from pathlib import Path

    script = Path(__file__).resolve().parent.parent / "examples" / "campaign_lifecycle.py"
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "truth-base divergences" in proc.stdout
    assert "issues remaining        : 0" in proc.stdout
