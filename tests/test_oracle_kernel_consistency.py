"""Differential fuzz: the oracle must agree with the revised kernel.

On the revised kernel (all defects fixed) every service is supposed to
behave exactly as documented; therefore for *any* argument tuple the
observed outcome must satisfy the oracle's expectation.  Hypothesis
drives random (not just dictionary) values through integer-only
hypercalls and cross-checks kernel vs oracle — the same consistency the
full campaign asserts, generalised beyond the dictionaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.oracle import ReferenceOracle
from repro.xm.api import hypercall_by_name
from repro.xm.errors import NoReturnFromHypercall
from repro.xm.vulns import FIXED_VERSION

from conftest import BootedSystem

u32 = st.integers(min_value=0, max_value=2**32 - 1)
s32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
s64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)

_TYPE_STRATEGIES = {
    "xm_u32_t": u32,
    "xm_s32_t": s32,
    "xmTime_t": s64,
    "xmSize_t": u32,
    "xmAddress_t": u32,
    "xmIoAddress_t": u32,
}


def spec_for(function: str, values: tuple[int, ...]) -> TestCallSpec:
    hdef = hypercall_by_name(function)
    args = tuple(
        ArgSpec(param.name, str(value), value=value)
        for param, value in zip(hdef.params, values)
    )
    return TestCallSpec("fuzz#0", function, hdef.category.value, args)


def check_consistency(function: str, values: tuple[int, ...]) -> None:
    system = BootedSystem(version=FIXED_VERSION)
    # Mirror campaign conditions: the FDIR application opens its two
    # configured ports at boot, before any fault placeholder runs.
    for port_name in ("TM_MON", "FDIR_EVT"):
        system.kernel.ipc.open_port_by_name(system.fdir, port_name)
    oracle = ReferenceOracle(FIXED_VERSION)
    spec = spec_for(function, values)
    expectation = oracle.expect(spec)
    try:
        code = system.call(function, *values)
    except NoReturnFromHypercall:
        assert expectation.allow_no_return, (function, values)
        return
    assert not system.kernel.is_halted(), (function, values)
    assert expectation.rc_acceptable(code), (
        function,
        values,
        code,
        expectation,
    )


class TestOracleKernelConsistency:
    @given(u32)
    @settings(max_examples=30, deadline=None)
    def test_reset_system(self, mode):
        check_consistency("XM_reset_system", (mode,))

    @given(s32, u32, u32)
    @settings(max_examples=30, deadline=None)
    def test_reset_partition(self, ident, mode, status):
        check_consistency("XM_reset_partition", (ident, mode, status))

    @given(s32)
    @settings(max_examples=30, deadline=None)
    def test_halt_partition(self, ident):
        check_consistency("XM_halt_partition", (ident,))

    @given(u32, u32, u32)
    @settings(max_examples=30, deadline=None)
    def test_route_irq(self, irq_type, line, vector):
        check_consistency("XM_route_irq", (irq_type, line, vector))

    @given(u32)
    @settings(max_examples=20, deadline=None)
    def test_mask_irq(self, line):
        check_consistency("XM_mask_irq", (line,))

    @given(u32)
    @settings(max_examples=20, deadline=None)
    def test_switch_sched_plan(self, plan):
        check_consistency("XM_switch_sched_plan", (plan,))

    @given(u32, u32)
    @settings(max_examples=30, deadline=None)
    def test_hm_seek(self, offset, whence):
        check_consistency("XM_hm_seek", (offset, whence))

    @given(u32, s64, s64)
    @settings(max_examples=30, deadline=None)
    def test_set_timer_on_fixed_kernel(self, clock, abs_time, interval):
        check_consistency("XM_set_timer", (clock, abs_time, interval))

    @given(s32)
    @settings(max_examples=20, deadline=None)
    def test_flush_port(self, port):
        check_consistency("XM_flush_port", (port,))

    @given(u32)
    @settings(max_examples=20, deadline=None)
    def test_sparc_inport(self, port):
        check_consistency("XM_sparc_inport", (port,))
