"""Unit tests for the memory map and address spaces."""

import pytest

from repro.sparc import Access, AddressSpace, MemoryArea, MemoryFault, PhysicalMemory


def make_memory():
    mem = PhysicalMemory()
    mem.add_area(MemoryArea("a", 0x40000000, 0x1000, Access.RWX, owner="p0"))
    mem.add_area(MemoryArea("b", 0x40001000, 0x1000, Access.RWX, owner="p1"))
    return mem


class TestMemoryArea:
    def test_end_and_contains(self):
        area = MemoryArea("x", 0x100, 0x10)
        assert area.end == 0x110
        assert area.contains(0x100)
        assert area.contains(0x10F)
        assert not area.contains(0x110)
        assert area.contains(0x108, 8)
        assert not area.contains(0x109, 8)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryArea("x", 0, 0)

    def test_out_of_32bit_rejected(self):
        with pytest.raises(ValueError):
            MemoryArea("x", 0xFFFFFFFF, 2)

    def test_overlap_detection(self):
        a = MemoryArea("a", 0x100, 0x100)
        b = MemoryArea("b", 0x1FF, 0x10)
        c = MemoryArea("c", 0x200, 0x10)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestPhysicalMemory:
    def test_overlapping_add_rejected(self):
        mem = make_memory()
        with pytest.raises(ValueError, match="overlaps"):
            mem.add_area(MemoryArea("c", 0x40000800, 0x1000))

    def test_read_write_roundtrip(self):
        mem = make_memory()
        mem.write(0x40000010, b"hello")
        assert mem.read(0x40000010, 5) == b"hello"

    def test_unmapped_read_faults(self):
        mem = make_memory()
        with pytest.raises(MemoryFault) as exc:
            mem.read(0x50000000, 4)
        assert exc.value.reason == "unmapped"
        assert exc.value.address == 0x50000000

    def test_cross_area_access_faults(self):
        # A range spanning two adjacent areas is not a single-area access.
        mem = make_memory()
        with pytest.raises(MemoryFault):
            mem.read(0x40000FFC, 8)

    def test_zero_initialised(self):
        mem = make_memory()
        assert mem.read(0x40000000, 16) == bytes(16)

    def test_clear_zeroes_contents(self):
        mem = make_memory()
        mem.write(0x40000000, b"\xff" * 4)
        mem.clear()
        assert mem.read(0x40000000, 4) == bytes(4)

    def test_area_at_returns_none_for_partial(self):
        mem = make_memory()
        assert mem.area_at(0x40000FFF, 2) is None
        assert mem.area_at(0x40000FFF, 1).name == "a"


class TestAddressSpace:
    def test_grant_required_for_access(self):
        mem = make_memory()
        space = AddressSpace("p0", mem)
        with pytest.raises(MemoryFault) as exc:
            space.read(0x40000000, 4)
        assert exc.value.reason == "protection"
        space.grant("a", Access.READ)
        assert space.read(0x40000000, 4) == bytes(4)

    def test_write_needs_write_right(self):
        mem = make_memory()
        space = AddressSpace("p0", mem)
        space.grant("a", Access.READ)
        with pytest.raises(MemoryFault):
            space.write(0x40000000, b"x")
        space.grant("a", Access.WRITE)
        space.write(0x40000000, b"x")
        assert space.read(0x40000000, 1) == b"x"

    def test_isolation_between_spaces(self):
        mem = make_memory()
        p0 = AddressSpace("p0", mem)
        p0.grant("a", Access.RW)
        p1 = AddressSpace("p1", mem)
        p1.grant("b", Access.RW)
        p0.write(0x40000000, b"zz")
        with pytest.raises(MemoryFault):
            p1.read(0x40000000, 2)

    def test_u32_big_endian(self):
        mem = make_memory()
        space = AddressSpace("k", mem)
        space.grant("a", Access.RW)
        space.write_u32(0x40000004, 0x12345678)
        assert space.read(0x40000004, 4) == b"\x12\x34\x56\x78"
        assert space.read_u32(0x40000004) == 0x12345678

    def test_unaligned_u32_faults(self):
        mem = make_memory()
        space = AddressSpace("k", mem)
        space.grant("a", Access.RW)
        with pytest.raises(MemoryFault) as exc:
            space.read_u32(0x40000001)
        assert exc.value.reason == "unaligned"

    def test_address_masking_to_32bit(self):
        mem = make_memory()
        space = AddressSpace("k", mem)
        space.grant("a", Access.RW)
        # 2**32 + base wraps to base.
        assert space.read((1 << 32) + 0x40000000, 4) == bytes(4)

    def test_cstring_read(self):
        mem = make_memory()
        space = AddressSpace("k", mem)
        space.grant("a", Access.RW)
        space.write(0x40000100, b"PORT_A\0")
        assert space.read_cstring(0x40000100) == b"PORT_A"

    def test_cstring_unterminated_hits_limit(self):
        mem = make_memory()
        space = AddressSpace("k", mem)
        space.grant("a", Access.RW)
        space.write(0x40000100, b"A" * 16)
        assert space.read_cstring(0x40000100, max_len=8) == b"A" * 8
