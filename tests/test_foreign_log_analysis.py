"""Re-analysing logs whose specs the campaign did not generate itself."""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.combinator import OneFactorStrategy
from repro.fault.testlog import CampaignLog


class TestForeignLogAnalysis:
    def test_log_reanalysed_under_different_strategy(self):
        """A cartesian log analysed by a one-factor campaign: test ids
        outside the campaign's own spec set are rebuilt from their
        dictionary labels."""
        cartesian = Campaign(functions=("XM_reset_system",))
        log = cartesian.run().log
        one_factor = Campaign(
            functions=("XM_reset_system",), strategy=OneFactorStrategy()
        )
        result = one_factor.analyse(log)
        assert result.total_tests == 5
        assert result.issue_count() == 3

    def test_foreign_ids_rebuild_specs_from_labels(self):
        campaign = Campaign(functions=("XM_reset_system",))
        log = campaign.run().log
        # Rename ids so none match the campaign's own spec set: the
        # analyser must rebuild specs from the dictionary labels.
        for record in log.records:
            record.test_id = "ext:" + record.test_id
        result = campaign.analyse(log)
        assert result.issue_count() == 3

    def test_unknown_label_is_a_clear_error(self):
        campaign = Campaign(functions=("XM_reset_system",))
        log = campaign.run().log
        log.records[0].test_id = "ext:broken"
        log.records[0].arg_labels = ("NOT_A_LABEL",)
        with pytest.raises(KeyError, match="NOT_A_LABEL"):
            campaign.analyse(log)

    def test_roundtrip_through_disk_preserves_analysis(self, tmp_path):
        campaign = Campaign(functions=("XM_multicall",))
        original = campaign.run()
        path = tmp_path / "log.jsonl"
        original.log.save(path)
        reanalysed = campaign.analyse(CampaignLog.load(path))
        assert reanalysed.issue_count() == original.issue_count()
        assert [i.key for i in reanalysed.issues] == [
            i.key for i in original.issues
        ]

    def test_invocation_states_survive_disk(self, tmp_path):
        campaign = Campaign(functions=("XM_hm_seek",))
        result = campaign.run()
        path = tmp_path / "log.jsonl"
        result.log.save(path)
        loaded = CampaignLog.load(path)
        record = loaded.records[0]
        assert record.invocations[0].state is not None
        assert "hm_len" in record.invocations[0].state
