"""Unit tests for the Table I type registry."""

import pytest

from repro.xtypes import IntTypeDescriptor, TypeRegistry, default_registry


class TestRegistryContents:
    def test_all_basic_types_present(self):
        reg = default_registry()
        for name in (
            "xm_u8_t",
            "xm_s8_t",
            "xm_u16_t",
            "xm_s16_t",
            "xm_u32_t",
            "xm_s32_t",
            "xm_u64_t",
            "xm_s64_t",
        ):
            assert name in reg

    def test_all_extended_types_present(self):
        reg = default_registry()
        for name in (
            "xmWord_t",
            "xmAddress_t",
            "xmIoAddress_t",
            "xmSize_t",
            "xmId_t",
            "xmSSize_t",
            "xmTime_t",
        ):
            assert name in reg

    def test_total_count_matches_table1(self):
        # 8 basic + 7 extended entries.
        assert len(default_registry()) == 15

    def test_extended_alias_size_matches_basic(self):
        reg = default_registry()
        assert reg.lookup("xmTime_t").size_bits == 64
        assert reg.lookup("xmAddress_t").size_bits == 32

    def test_c_decl_column(self):
        reg = default_registry()
        assert reg.lookup("xm_u32_t").c_decl == "unsigned int"
        assert reg.lookup("xmTime_t").c_decl == "signed long long"

    def test_group_by_basic_matches_paper_layout(self):
        groups = default_registry().group_by_basic()
        u32_aliases = {e.name for e in groups["xm_u32_t"] if e.is_extended}
        assert u32_aliases == {
            "xmWord_t",
            "xmAddress_t",
            "xmIoAddress_t",
            "xmSize_t",
            "xmId_t",
        }
        s32_aliases = {e.name for e in groups["xm_s32_t"] if e.is_extended}
        assert s32_aliases == {"xmSSize_t"}
        s64_aliases = {e.name for e in groups["xm_s64_t"] if e.is_extended}
        assert s64_aliases == {"xmTime_t"}

    def test_table1_rows_cover_all_groups(self):
        rows = default_registry().table1_rows()
        assert len(rows) == 8
        sizes = {row["basic"]: row["size_bits"] for row in rows}
        assert sizes["xm_u8_t"] == 8
        assert sizes["xm_u64_t"] == 64


class TestRegistryBehaviour:
    def test_unknown_type_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown XM type"):
            default_registry().lookup("xm_void_t")

    def test_duplicate_registration_rejected(self):
        reg = TypeRegistry()
        with pytest.raises(ValueError, match="already registered"):
            reg.register(IntTypeDescriptor("xm_u8_t", 8, False, "unsigned char"))

    def test_alias_to_unknown_basic_rejected(self):
        reg = TypeRegistry(populate=False)
        desc = IntTypeDescriptor("my_t", 32, False, "unsigned int")
        with pytest.raises(ValueError, match="unknown basic type"):
            reg.register(desc, basic_name="xm_u32_t")

    def test_custom_type_registration(self):
        reg = TypeRegistry()
        desc = IntTypeDescriptor("pok_u32_t", 32, False, "unsigned int")
        entry = reg.register(desc, basic_name="xm_u32_t")
        assert entry.is_extended
        assert reg.descriptor("pok_u32_t").bits == 32

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()

    def test_basic_and_extended_partition(self):
        reg = default_registry()
        assert len(reg.basic_types()) == 8
        assert len(reg.extended_types()) == 7
