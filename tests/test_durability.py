"""Durable campaigns: streaming logs, worker supervision, watchdog, atomic IO."""

import json
import multiprocessing
import signal
import time

import pytest

from repro.fault.campaign import Campaign
from repro.fault.classify import FailureKind, Severity, classify
from repro.fault.executor import (
    HANG_SPEC_ENV,
    KILL_SPEC_ENV,
    TestExecutor,
    worker_killed_record,
)
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.oracle import Expectation
from repro.fault.stats import durability_summary
from repro.fault.testlog import CampaignLog, TestRecord
from repro.tsim.simulator import SimSnapshot
from repro.xm.vulns import FIXED_VERSION

#: The three hypercalls carrying the paper's findings: 62 tests, 9 issues.
TRIO = ("XM_reset_system", "XM_set_timer", "XM_multicall")


def make_record(test_id, **overrides):
    base = dict(
        test_id=test_id,
        function="XM_mask_irq",
        category="Interrupt Management",
        kernel_version="3.4.0",
        frames=2,
    )
    base.update(overrides)
    return TestRecord(**base)


def strip_wall_time(record):
    data = record.to_dict()
    data.pop("wall_time_s")
    # Host-side provenance legitimately differs between runs (the pool
    # shape depends on how many specs were left); the verdict must not.
    data.pop("host_context")
    return data


class TestAtomicSave:
    def test_save_leaves_no_temp_residue(self, tmp_path):
        path = tmp_path / "log.jsonl"
        CampaignLog([make_record("a"), make_record("b")]).save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["log.jsonl"]
        assert len(CampaignLog.load(path)) == 2

    def test_failed_save_preserves_existing_log(self, tmp_path, monkeypatch):
        path = tmp_path / "log.jsonl"
        CampaignLog([make_record("a")]).save(path)
        before = path.read_text(encoding="utf-8")

        def boom(self):
            raise RuntimeError("serialiser died mid-write")

        monkeypatch.setattr(TestRecord, "to_dict", boom)
        with pytest.raises(RuntimeError):
            CampaignLog([make_record("b")]).save(path)
        assert path.read_text(encoding="utf-8") == before
        assert [p.name for p in tmp_path.iterdir()] == ["log.jsonl"]


class TestForwardCompatibleLoad:
    def test_unknown_fields_dropped_with_warning(self):
        data = make_record("a").to_dict()
        data["from_the_future"] = 42
        with pytest.warns(UserWarning, match="from_the_future"):
            record = TestRecord.from_dict(data)
        assert record.test_id == "a"

    def test_unknown_invocation_fields_dropped(self):
        data = make_record("a").to_dict()
        data["invocations"] = [
            {"returned": True, "rc": 0, "note": "", "state": None, "gpu_ns": 1}
        ]
        record = TestRecord.from_dict(data)
        assert record.first_rc == 0

    def test_load_survives_newer_log_file(self, tmp_path):
        path = tmp_path / "newer.jsonl"
        data = make_record("a").to_dict()
        data["added_in_v99"] = {"nested": True}
        path.write_text(json.dumps(data) + "\n", encoding="utf-8")
        with pytest.warns(UserWarning, match="added_in_v99"):
            log = CampaignLog.load(path)
        assert log.records[0].test_id == "a"


class TestLogStream:
    def test_records_hit_disk_immediately(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with CampaignLog.stream(path) as stream:
            stream.append(make_record("a"))
            # Visible to a reader before close: flushed per record.
            assert len(CampaignLog.load(path)) == 1
            stream.append(make_record("b"))
            assert len(CampaignLog.load(path)) == 2
        assert stream.written == 2

    def test_reopening_deduplicates_by_test_id(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with CampaignLog.stream(path) as stream:
            stream.append(make_record("a"))
        with CampaignLog.stream(path) as stream:
            stream.append(make_record("a"))  # already on disk: no-op
            stream.append(make_record("b"))
        log = CampaignLog.load(path)
        assert [r.test_id for r in log] == ["a", "b"]

    def test_campaign_streams_complete_log(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        result = Campaign(functions=("XM_reset_system",)).run(log_path=path)
        assert len(CampaignLog.load(path)) == result.total_tests == 5


class TestTruncatedTail:
    """A crash mid-append leaves a half-written last line; resume must cope."""

    @staticmethod
    def _write_with_truncated_tail(path):
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(make_record("a").to_dict()) + "\n")
            fh.write(json.dumps(make_record("b").to_dict()) + "\n")
            fh.write('{"test_id": "c", "fun')  # interrupted mid-append

    def test_load_drops_truncated_final_line(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        self._write_with_truncated_tail(path)
        with pytest.warns(UserWarning, match="truncated"):
            log = CampaignLog.load(path)
        assert [r.test_id for r in log] == ["a", "b"]

    def test_stream_truncates_tail_and_rewrites_lost_record(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        self._write_with_truncated_tail(path)
        with pytest.warns(UserWarning, match="truncated"):
            stream = CampaignLog.stream(path)
        with stream:
            # The half-written record is gone from the dedup set, so the
            # resumed campaign checkpoints it again.
            stream.append(make_record("c"))
            stream.append(make_record("d"))
        log = CampaignLog.load(path)  # no junk left mid-file
        assert [r.test_id for r in log] == ["a", "b", "c", "d"]

    def test_corruption_before_the_last_line_still_raises(self, tmp_path):
        path = tmp_path / "mangled.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            fh.write('{"test_id": "a", "fun\n')
            fh.write(json.dumps(make_record("b").to_dict()) + "\n")
        with pytest.raises(json.JSONDecodeError):
            CampaignLog.load(path)
        with pytest.raises(json.JSONDecodeError):
            CampaignLog.stream(path)

    def test_stream_repairs_missing_final_newline(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        path.write_text(
            json.dumps(make_record("a").to_dict()), encoding="utf-8"
        )  # complete record, lost its newline
        with CampaignLog.stream(path) as stream:
            stream.append(make_record("b"))
        assert [r.test_id for r in CampaignLog.load(path)] == ["a", "b"]


class TestResumeValidation:
    def test_version_mismatch_rejected(self):
        fixed = Campaign(functions=("XM_reset_system",), kernel_version=FIXED_VERSION)
        log = fixed.run().log
        vulnerable = Campaign(functions=("XM_reset_system",))
        with pytest.raises(ValueError, match="kernel"):
            vulnerable.run(resume_from=log)

    def test_frames_mismatch_rejected(self):
        short = Campaign(functions=("XM_switch_sched_plan",), frames=1)
        log = short.run().log
        standard = Campaign(functions=("XM_switch_sched_plan",))
        with pytest.raises(ValueError, match="frames"):
            standard.run(resume_from=log)

    def test_matching_configuration_resumes(self):
        campaign = Campaign(functions=("XM_reset_system",))
        full = campaign.run()
        resumed = campaign.run(resume_from=CampaignLog(full.log.records[:2]))
        assert resumed.total_tests == full.total_tests


class TestWarmPathLeak:
    def test_recycle_runs_when_build_record_raises(self, monkeypatch):
        executor = TestExecutor()
        spec = TestCallSpec(
            "leak#0",
            "XM_mask_irq",
            "Interrupt Management",
            (ArgSpec("irqLine", "1", value=1),),
        )
        executor.run(spec)  # warm snapshot built, warm path active
        assert executor.warm_boot
        recycled = []
        original = SimSnapshot.recycle
        monkeypatch.setattr(
            SimSnapshot,
            "recycle",
            lambda self, sim: (recycled.append(sim), original(self, sim))[1],
        )

        def boom(*args, **kwargs):
            raise RuntimeError("record builder died")

        monkeypatch.setattr(executor, "_build_record", boom)
        with pytest.raises(RuntimeError, match="record builder"):
            executor.run(spec)
        assert recycled, "restored simulator leaked on the raising path"


class TestWatchdog:
    def test_runaway_test_becomes_hung_record(self, monkeypatch):
        spec = TestCallSpec(
            "hang#0",
            "XM_mask_irq",
            "Interrupt Management",
            (ArgSpec("irqLine", "1", value=1),),
        )
        monkeypatch.setenv(HANG_SPEC_ENV, spec.test_id)
        record = TestExecutor(timeout_s=0.2).run(spec)
        assert record.sim_hung and record.watchdog_expired
        assert not record.invoked
        classification = classify(record, Expectation())
        assert classification.severity is Severity.RESTART
        assert classification.kind is FailureKind.SIM_HANG
        assert "watchdog" in classification.detail

    def test_serial_campaign_survives_runaway_test(self, monkeypatch):
        campaign = Campaign(functions=("XM_reset_system",))
        victim = list(campaign.iter_specs())[1].test_id
        monkeypatch.setenv(HANG_SPEC_ENV, victim)
        result = campaign.run(timeout_s=0.2)
        assert result.total_tests == 5
        hung = [r for r in result.log if r.watchdog_expired]
        assert [r.test_id for r in hung] == [victim]

    def test_parallel_campaign_survives_runaway_test(self, monkeypatch):
        campaign = Campaign(functions=("XM_reset_system",))
        victim = list(campaign.iter_specs())[1].test_id
        monkeypatch.setenv(HANG_SPEC_ENV, victim)
        result = campaign.run(processes=2, timeout_s=0.5)
        assert result.total_tests == 5
        hung = [r for r in result.log if r.watchdog_expired]
        assert [r.test_id for r in hung] == [victim]

    def test_no_watchdog_by_default(self):
        executor = TestExecutor()
        assert executor.timeout_s is None

    def test_finished_record_survives_slow_record_build(self, monkeypatch):
        """The timer is disarmed the moment the run phase ends.

        A test that completes just under the deadline must not have its
        finished record discarded because SIGALRM fires during
        _build_record or snapshot recycling.
        """
        spec = TestCallSpec(
            "slowbuild#0",
            "XM_mask_irq",
            "Interrupt Management",
            (ArgSpec("irqLine", "1", value=1),),
        )
        original = TestExecutor._build_record

        def slow_build(self, *args, **kwargs):
            time.sleep(0.5)  # well past the watchdog deadline
            return original(self, *args, **kwargs)

        monkeypatch.setattr(TestExecutor, "_build_record", slow_build)
        record = TestExecutor(timeout_s=0.2).run(spec)
        assert not record.watchdog_expired
        assert not record.sim_hung
        assert record.invoked


class TestWorkerSupervision:
    def test_killed_worker_does_not_forfeit_the_campaign(self, monkeypatch):
        campaign = Campaign(functions=("XM_reset_system", "XM_switch_sched_plan"))
        baseline = campaign.run()
        specs = list(campaign.iter_specs())
        # A nominally-passing spec so the kill adds exactly one issue.
        victim = [s for s in specs if s.function == "XM_switch_sched_plan"][0]
        monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
        result = campaign.run(processes=2)
        # Zero completed records lost, the killer logged first-class.
        assert result.total_tests == baseline.total_tests
        killed = [r for r in result.log if r.worker_killed]
        assert [r.test_id for r in killed] == [victim.test_id]
        assert result.issue_count() == baseline.issue_count() + 1
        extra = [i for i in result.issues if i.kind is FailureKind.WORKER_KILLED]
        assert len(extra) == 1
        assert extra[0].severity is Severity.CATASTROPHIC
        assert extra[0].hypercall == "XM_switch_sched_plan"
        # Every other record matches the serial baseline field-for-field.
        survivors = {
            r.test_id: strip_wall_time(r)
            for r in result.log
            if not r.worker_killed
        }
        expected = {
            r.test_id: strip_wall_time(r)
            for r in baseline.log
            if r.test_id != victim.test_id
        }
        assert survivors == expected

    def test_worker_killed_record_roundtrips_and_counts(self, tmp_path):
        spec = TestCallSpec(
            "kill#0",
            "XM_mask_irq",
            "Interrupt Management",
            (ArgSpec("irqLine", "1", value=1),),
        )
        record = worker_killed_record(spec, "3.4.0", 2)
        path = tmp_path / "log.jsonl"
        CampaignLog([record]).save(path)
        loaded = CampaignLog.load(path).records[0]
        assert loaded.worker_killed
        summary = durability_summary(CampaignLog([record]))
        assert summary["worker_killed"] == 1
        assert summary["watchdog_expired"] == 0


class TestCliStaleLog:
    def test_fresh_run_moves_stale_log_aside(self, tmp_path, capsys):
        """--log on an existing file without --resume must not let the
        stream dedup fresh results against a previous run's records."""
        from repro.cli import main

        path = tmp_path / "out.jsonl"
        campaign = Campaign(functions=("XM_reset_system",))
        victim = list(campaign.iter_specs())[0].test_id
        stale = make_record(victim, halt_reason="stale-previous-run")
        CampaignLog([stale]).save(path)
        code = main(
            ["run", "--functions", "XM_reset_system", "--quiet", "--log", str(path)]
        )
        capsys.readouterr()
        assert code == 0
        fresh = CampaignLog.load(path)
        assert len(fresh) == 5
        assert all(r.halt_reason != "stale-previous-run" for r in fresh)
        prev = tmp_path / "out.jsonl.prev"
        assert prev.exists()
        assert CampaignLog.load(prev).records[0].halt_reason == "stale-previous-run"


def _stub_run_shard_payload(shard):
    """Worker stub: relay a minimal record per spec, skip the simulator.

    Exercises the real shard wire format (indices into the regenerated
    spec table, sparse records on the relay) while keeping a round big
    enough to overflow the relay pipe cheap.  Installed over the real
    entry point via monkeypatch + the fork start method (workers
    inherit the patch).
    """
    from repro.fault import executor as executor_mod
    from repro.fault import wire

    shard_no, indices = shard
    executor_mod._RELAY.put(("shard", shard_no))
    for index in indices:
        spec = executor_mod._SPEC_TABLE[index]
        record = TestRecord(
            test_id=spec.test_id,
            function=spec.function,
            category=spec.category,
            kernel_version="3.4.0",
            frames=2,
        )
        executor_mod._RELAY.put(("record", wire.encode_record(record)))
    return len(indices)


class TestRelayDrain:
    """Relayed records must be consumed while the round runs."""

    def test_large_round_does_not_fill_the_relay_pipe(self, monkeypatch):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method to stub the worker")
        import repro.fault.campaign as campaign_mod
        import repro.fault.executor as executor_mod

        monkeypatch.setattr(
            executor_mod, "run_shard_payload", _stub_run_shard_payload
        )
        monkeypatch.setattr(
            campaign_mod, "run_shard_payload", _stub_run_shard_payload
        )
        campaign = Campaign(warm_boot=False)
        specs = list(campaign.iter_specs())

        # The full default campaign streams a few hundred KB of records
        # over the ~64KB relay pipe, so every worker blocks in put() if
        # the parent only drains at round end.  Fail loudly instead of
        # hanging the suite if that regresses.
        def overdue(signum, frame):  # noqa: ANN001 - signal handler
            raise AssertionError("parallel round deadlocked on the relay")

        previous = signal.signal(signal.SIGALRM, overdue)
        signal.alarm(120)
        try:
            records = campaign._run_parallel(specs, 2, None, None, None)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
        assert [r.test_id for r in records] == [s.test_id for s in specs]


class TestKillResumeRerun:
    """The acceptance cycle: kill, interrupt, resume — nothing lost."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return Campaign(functions=TRIO)

    def test_interrupted_resumed_equals_uninterrupted(
        self, campaign, tmp_path, monkeypatch
    ):
        specs = list(campaign.iter_specs())
        killer = [s for s in specs if s.function == "XM_set_timer"][5].test_id
        monkeypatch.setenv(KILL_SPEC_ENV, killer)
        baseline = campaign.run(processes=2)
        assert any(r.worker_killed for r in baseline.log)

        path = tmp_path / "trio.jsonl"

        def interrupt(done, total, record):
            if done == 15:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(processes=2, progress=interrupt, log_path=path)
        partial = CampaignLog.load(path)
        assert 1 <= len(partial) < baseline.total_tests

        resumed = campaign.run(
            processes=2, resume_from=partial, log_path=path
        )
        assert resumed.total_tests == baseline.total_tests == 62
        assert [strip_wall_time(r) for r in resumed.log] == [
            strip_wall_time(r) for r in baseline.log
        ]
        assert [i.key for i in resumed.issues] == [i.key for i in baseline.issues]
        assert resumed.severity_counts() == baseline.severity_counts()
        # The streamed file alone is the complete campaign.
        assert len(CampaignLog.load(path)) == baseline.total_tests

    def test_serial_interrupt_resume_keeps_paper_counts(self, campaign, tmp_path):
        from repro.fault.report import table3_totals

        path = tmp_path / "serial.jsonl"

        def interrupt(done, total, record):
            if done == 20:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(progress=interrupt, log_path=path)
        assert len(CampaignLog.load(path)) == 20

        resumed = campaign.run(
            resume_from=CampaignLog.load(path), log_path=path
        )
        assert resumed.issue_count() == 9  # Table III on 3.4.0
        assert table3_totals(resumed).tests == 62

    def test_resume_on_fixed_kernel_stays_clean(self, tmp_path):
        campaign = Campaign(functions=TRIO, kernel_version=FIXED_VERSION)
        path = tmp_path / "fixed.jsonl"

        def interrupt(done, total, record):
            if done == 10:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(progress=interrupt, log_path=path)
        resumed = campaign.run(
            resume_from=CampaignLog.load(path), log_path=path
        )
        assert resumed.total_tests == 62
        assert resumed.issue_count() == 0  # Table III on 3.4.1


class TestStatsTrailer:
    """Execution stats must survive the round trip through the log file."""

    def test_streamed_log_carries_execution_stats(self, tmp_path):
        path = tmp_path / "run.jsonl"
        live = Campaign(functions=("XM_reset_system",)).run(log_path=path)
        assert live.execution_stats  # the live path always has them
        loaded = CampaignLog.load(path)
        assert loaded.execution_stats == live.execution_stats

    def test_offline_report_identical_to_live(self, tmp_path):
        """The acceptance criterion: analysing the streamed log offline
        must reproduce the live report line for line — including the
        execution-stats section that used to be lost."""
        from repro.fault.report import full_report

        path = tmp_path / "run.jsonl"
        campaign = Campaign(functions=("XM_reset_system",))
        live = campaign.run(log_path=path)
        offline = campaign.analyse(CampaignLog.load(path))
        assert full_report(offline) == full_report(live)

    def test_save_preserves_stats(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = Campaign(functions=("XM_reset_system",)).run(log_path=path)
        copy = tmp_path / "copy.jsonl"
        CampaignLog.load(path).save(copy)
        assert CampaignLog.load(copy).execution_stats == result.execution_stats

    def test_trailer_is_invisible_to_record_parsing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = Campaign(functions=("XM_reset_system",)).run(log_path=path)
        assert len(CampaignLog.load(path)) == result.total_tests
        trailers = [
            line
            for line in path.read_text(encoding="utf-8").splitlines()
            if "__campaign_stats__" in line
        ]
        assert len(trailers) == 1

    def test_resumed_run_merges_interrupted_counters(self, tmp_path):
        path = tmp_path / "run.jsonl"
        campaign = Campaign(functions=("XM_reset_system",))

        def interrupt(done, total, record):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(progress=interrupt, log_path=path)
        partial = CampaignLog.load(path)
        assert partial.execution_stats is not None
        first_leg = partial.execution_stats["reset_modes"]
        resumed = campaign.run(resume_from=partial, log_path=path)
        merged = resumed.execution_stats["reset_modes"]
        # The resumed run's ladder counters include the first leg's.
        assert sum(merged.values()) >= sum(first_leg.values())
        assert sum(
            v for k, v in merged.items()
            if k in ("delta", "restore", "cold")
        ) == resumed.total_tests

    def test_reset_modes_reach_the_report(self):
        from repro.fault.report import campaign_summary

        result = Campaign(functions=("XM_reset_system",)).run()
        assert "Reset modes" in campaign_summary(result)


class TestWarningDedup:
    def test_one_warning_per_unknown_field_set_on_load(self, tmp_path):
        import warnings as warnings_mod

        path = tmp_path / "newer.jsonl"
        lines = []
        for test_id in "abcde":
            data = make_record(test_id).to_dict()
            data["future_field"] = 1
            lines.append(json.dumps(data))
        data = make_record("f").to_dict()
        data["other_field"] = 2
        lines.append(json.dumps(data))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            log = CampaignLog.load(path)
        assert len(log) == 6
        messages = [str(w.message) for w in caught]
        assert len(messages) == 2  # one per distinct unknown-field set
        by_field = {m for m in messages if "future_field" in m}
        assert any("5 record(s)" in m for m in by_field)
        assert any("1 record(s)" in m for m in messages if "other_field" in m)
