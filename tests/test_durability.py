"""Durable campaigns: streaming logs, worker supervision, watchdog, atomic IO."""

import json

import pytest

from repro.fault.campaign import Campaign
from repro.fault.classify import FailureKind, Severity, classify
from repro.fault.executor import (
    HANG_SPEC_ENV,
    KILL_SPEC_ENV,
    TestExecutor,
    worker_killed_record,
)
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.oracle import Expectation
from repro.fault.stats import durability_summary
from repro.fault.testlog import CampaignLog, TestRecord
from repro.tsim.simulator import SimSnapshot
from repro.xm.vulns import FIXED_VERSION

#: The three hypercalls carrying the paper's findings: 62 tests, 9 issues.
TRIO = ("XM_reset_system", "XM_set_timer", "XM_multicall")


def make_record(test_id, **overrides):
    base = dict(
        test_id=test_id,
        function="XM_mask_irq",
        category="Interrupt Management",
        kernel_version="3.4.0",
        frames=2,
    )
    base.update(overrides)
    return TestRecord(**base)


def strip_wall_time(record):
    data = record.to_dict()
    data.pop("wall_time_s")
    return data


class TestAtomicSave:
    def test_save_leaves_no_temp_residue(self, tmp_path):
        path = tmp_path / "log.jsonl"
        CampaignLog([make_record("a"), make_record("b")]).save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["log.jsonl"]
        assert len(CampaignLog.load(path)) == 2

    def test_failed_save_preserves_existing_log(self, tmp_path, monkeypatch):
        path = tmp_path / "log.jsonl"
        CampaignLog([make_record("a")]).save(path)
        before = path.read_text(encoding="utf-8")

        def boom(self):
            raise RuntimeError("serialiser died mid-write")

        monkeypatch.setattr(TestRecord, "to_dict", boom)
        with pytest.raises(RuntimeError):
            CampaignLog([make_record("b")]).save(path)
        assert path.read_text(encoding="utf-8") == before
        assert [p.name for p in tmp_path.iterdir()] == ["log.jsonl"]


class TestForwardCompatibleLoad:
    def test_unknown_fields_dropped_with_warning(self):
        data = make_record("a").to_dict()
        data["from_the_future"] = 42
        with pytest.warns(UserWarning, match="from_the_future"):
            record = TestRecord.from_dict(data)
        assert record.test_id == "a"

    def test_unknown_invocation_fields_dropped(self):
        data = make_record("a").to_dict()
        data["invocations"] = [
            {"returned": True, "rc": 0, "note": "", "state": None, "gpu_ns": 1}
        ]
        record = TestRecord.from_dict(data)
        assert record.first_rc == 0

    def test_load_survives_newer_log_file(self, tmp_path):
        path = tmp_path / "newer.jsonl"
        data = make_record("a").to_dict()
        data["added_in_v99"] = {"nested": True}
        path.write_text(json.dumps(data) + "\n", encoding="utf-8")
        with pytest.warns(UserWarning, match="added_in_v99"):
            log = CampaignLog.load(path)
        assert log.records[0].test_id == "a"


class TestLogStream:
    def test_records_hit_disk_immediately(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with CampaignLog.stream(path) as stream:
            stream.append(make_record("a"))
            # Visible to a reader before close: flushed per record.
            assert len(CampaignLog.load(path)) == 1
            stream.append(make_record("b"))
            assert len(CampaignLog.load(path)) == 2
        assert stream.written == 2

    def test_reopening_deduplicates_by_test_id(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with CampaignLog.stream(path) as stream:
            stream.append(make_record("a"))
        with CampaignLog.stream(path) as stream:
            stream.append(make_record("a"))  # already on disk: no-op
            stream.append(make_record("b"))
        log = CampaignLog.load(path)
        assert [r.test_id for r in log] == ["a", "b"]

    def test_campaign_streams_complete_log(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        result = Campaign(functions=("XM_reset_system",)).run(log_path=path)
        assert len(CampaignLog.load(path)) == result.total_tests == 5


class TestResumeValidation:
    def test_version_mismatch_rejected(self):
        fixed = Campaign(functions=("XM_reset_system",), kernel_version=FIXED_VERSION)
        log = fixed.run().log
        vulnerable = Campaign(functions=("XM_reset_system",))
        with pytest.raises(ValueError, match="kernel"):
            vulnerable.run(resume_from=log)

    def test_frames_mismatch_rejected(self):
        short = Campaign(functions=("XM_switch_sched_plan",), frames=1)
        log = short.run().log
        standard = Campaign(functions=("XM_switch_sched_plan",))
        with pytest.raises(ValueError, match="frames"):
            standard.run(resume_from=log)

    def test_matching_configuration_resumes(self):
        campaign = Campaign(functions=("XM_reset_system",))
        full = campaign.run()
        resumed = campaign.run(resume_from=CampaignLog(full.log.records[:2]))
        assert resumed.total_tests == full.total_tests


class TestWarmPathLeak:
    def test_recycle_runs_when_build_record_raises(self, monkeypatch):
        executor = TestExecutor()
        spec = TestCallSpec(
            "leak#0",
            "XM_mask_irq",
            "Interrupt Management",
            (ArgSpec("irqLine", "1", value=1),),
        )
        executor.run(spec)  # warm snapshot built, warm path active
        assert executor.warm_boot
        recycled = []
        original = SimSnapshot.recycle
        monkeypatch.setattr(
            SimSnapshot,
            "recycle",
            lambda self, sim: (recycled.append(sim), original(self, sim))[1],
        )

        def boom(*args, **kwargs):
            raise RuntimeError("record builder died")

        monkeypatch.setattr(executor, "_build_record", boom)
        with pytest.raises(RuntimeError, match="record builder"):
            executor.run(spec)
        assert recycled, "restored simulator leaked on the raising path"


class TestWatchdog:
    def test_runaway_test_becomes_hung_record(self, monkeypatch):
        spec = TestCallSpec(
            "hang#0",
            "XM_mask_irq",
            "Interrupt Management",
            (ArgSpec("irqLine", "1", value=1),),
        )
        monkeypatch.setenv(HANG_SPEC_ENV, spec.test_id)
        record = TestExecutor(timeout_s=0.2).run(spec)
        assert record.sim_hung and record.watchdog_expired
        assert not record.invoked
        classification = classify(record, Expectation())
        assert classification.severity is Severity.RESTART
        assert classification.kind is FailureKind.SIM_HANG
        assert "watchdog" in classification.detail

    def test_serial_campaign_survives_runaway_test(self, monkeypatch):
        campaign = Campaign(functions=("XM_reset_system",))
        victim = list(campaign.iter_specs())[1].test_id
        monkeypatch.setenv(HANG_SPEC_ENV, victim)
        result = campaign.run(timeout_s=0.2)
        assert result.total_tests == 5
        hung = [r for r in result.log if r.watchdog_expired]
        assert [r.test_id for r in hung] == [victim]

    def test_parallel_campaign_survives_runaway_test(self, monkeypatch):
        campaign = Campaign(functions=("XM_reset_system",))
        victim = list(campaign.iter_specs())[1].test_id
        monkeypatch.setenv(HANG_SPEC_ENV, victim)
        result = campaign.run(processes=2, timeout_s=0.5)
        assert result.total_tests == 5
        hung = [r for r in result.log if r.watchdog_expired]
        assert [r.test_id for r in hung] == [victim]

    def test_no_watchdog_by_default(self):
        executor = TestExecutor()
        assert executor.timeout_s is None


class TestWorkerSupervision:
    def test_killed_worker_does_not_forfeit_the_campaign(self, monkeypatch):
        campaign = Campaign(functions=("XM_reset_system", "XM_switch_sched_plan"))
        baseline = campaign.run()
        specs = list(campaign.iter_specs())
        # A nominally-passing spec so the kill adds exactly one issue.
        victim = [s for s in specs if s.function == "XM_switch_sched_plan"][0]
        monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
        result = campaign.run(processes=2)
        # Zero completed records lost, the killer logged first-class.
        assert result.total_tests == baseline.total_tests
        killed = [r for r in result.log if r.worker_killed]
        assert [r.test_id for r in killed] == [victim.test_id]
        assert result.issue_count() == baseline.issue_count() + 1
        extra = [i for i in result.issues if i.kind is FailureKind.WORKER_KILLED]
        assert len(extra) == 1
        assert extra[0].severity is Severity.CATASTROPHIC
        assert extra[0].hypercall == "XM_switch_sched_plan"
        # Every other record matches the serial baseline field-for-field.
        survivors = {
            r.test_id: strip_wall_time(r)
            for r in result.log
            if not r.worker_killed
        }
        expected = {
            r.test_id: strip_wall_time(r)
            for r in baseline.log
            if r.test_id != victim.test_id
        }
        assert survivors == expected

    def test_worker_killed_record_roundtrips_and_counts(self, tmp_path):
        spec = TestCallSpec(
            "kill#0",
            "XM_mask_irq",
            "Interrupt Management",
            (ArgSpec("irqLine", "1", value=1),),
        )
        record = worker_killed_record(spec, "3.4.0", 2)
        path = tmp_path / "log.jsonl"
        CampaignLog([record]).save(path)
        loaded = CampaignLog.load(path).records[0]
        assert loaded.worker_killed
        summary = durability_summary(CampaignLog([record]))
        assert summary["worker_killed"] == 1
        assert summary["watchdog_expired"] == 0


class TestKillResumeRerun:
    """The acceptance cycle: kill, interrupt, resume — nothing lost."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return Campaign(functions=TRIO)

    def test_interrupted_resumed_equals_uninterrupted(
        self, campaign, tmp_path, monkeypatch
    ):
        specs = list(campaign.iter_specs())
        killer = [s for s in specs if s.function == "XM_set_timer"][5].test_id
        monkeypatch.setenv(KILL_SPEC_ENV, killer)
        baseline = campaign.run(processes=2)
        assert any(r.worker_killed for r in baseline.log)

        path = tmp_path / "trio.jsonl"

        def interrupt(done, total, record):
            if done == 15:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(processes=2, progress=interrupt, log_path=path)
        partial = CampaignLog.load(path)
        assert 1 <= len(partial) < baseline.total_tests

        resumed = campaign.run(
            processes=2, resume_from=partial, log_path=path
        )
        assert resumed.total_tests == baseline.total_tests == 62
        assert [strip_wall_time(r) for r in resumed.log] == [
            strip_wall_time(r) for r in baseline.log
        ]
        assert [i.key for i in resumed.issues] == [i.key for i in baseline.issues]
        assert resumed.severity_counts() == baseline.severity_counts()
        # The streamed file alone is the complete campaign.
        assert len(CampaignLog.load(path)) == baseline.total_tests

    def test_serial_interrupt_resume_keeps_paper_counts(self, campaign, tmp_path):
        from repro.fault.report import table3_totals

        path = tmp_path / "serial.jsonl"

        def interrupt(done, total, record):
            if done == 20:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(progress=interrupt, log_path=path)
        assert len(CampaignLog.load(path)) == 20

        resumed = campaign.run(
            resume_from=CampaignLog.load(path), log_path=path
        )
        assert resumed.issue_count() == 9  # Table III on 3.4.0
        assert table3_totals(resumed).tests == 62

    def test_resume_on_fixed_kernel_stays_clean(self, tmp_path):
        campaign = Campaign(functions=TRIO, kernel_version=FIXED_VERSION)
        path = tmp_path / "fixed.jsonl"

        def interrupt(done, total, record):
            if done == 10:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(progress=interrupt, log_path=path)
        resumed = campaign.run(
            resume_from=CampaignLog.load(path), log_path=path
        )
        assert resumed.total_tests == 62
        assert resumed.issue_count() == 0  # Table III on 3.4.1
