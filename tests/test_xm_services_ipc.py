"""Unit tests for the IPC services (via Libxm in slot context)."""

import pytest

from repro.xm import rc
from repro.xm.svc_ipc import QueuingChannel, SamplingChannel

from conftest import BootedSystem


class IpcHarness:
    """Runs IPC flows through scheduled slots using FDIR payloads."""

    @staticmethod
    def run_with_payload(payload, frames=1, **kw):
        system = BootedSystem(fdir_payload=payload, **kw)
        system.run_frames(frames)
        return system


class TestSamplingFlow:
    def test_aocs_to_fdir_telemetry(self):
        seen = {}

        def payload(ctx, xm):
            port = xm.create_sampling_port("TM_MON", 64, rc.XM_DESTINATION_PORT, 300_000)
            seen.setdefault("port", port)
            code, data, valid = xm.read_sampling_message(port, 64)
            seen.setdefault("reads", []).append((code, len(data), valid))

        system = IpcHarness.run_with_payload(payload, frames=2)
        del system
        assert seen["port"] >= 0
        first, later = seen["reads"][0], seen["reads"][-1]
        # At t=0 AOCS has not run yet; after one frame telemetry flows.
        assert first[0] == rc.XM_NO_ACTION
        assert later[0] == 64 and later[2] == 1

    def test_create_is_idempotent(self):
        descs = []

        def payload(ctx, xm):
            descs.append(
                xm.create_sampling_port("TM_MON", 64, rc.XM_DESTINATION_PORT, 300_000)
            )
            descs.append(
                xm.create_sampling_port("TM_MON", 64, rc.XM_DESTINATION_PORT, 300_000)
            )

        IpcHarness.run_with_payload(payload)
        assert descs[0] == descs[1] >= 0


class TestSamplingValidation:
    def run_one(self, fn):
        out = {}

        def payload(ctx, xm):
            if "rc" not in out:
                out["rc"] = fn(ctx, xm)

        IpcHarness.run_with_payload(payload)
        return out["rc"]

    def test_null_name_pointer(self):
        assert (
            self.run_one(
                lambda ctx, xm: xm.call(
                    "XM_create_sampling_port", 0, 64, rc.XM_DESTINATION_PORT, 0
                )
            )
            == rc.XM_INVALID_PARAM
        )

    def test_unknown_port_name(self):
        assert (
            self.run_one(
                lambda ctx, xm: xm.create_sampling_port(
                    "NOT_A_PORT", 64, rc.XM_DESTINATION_PORT
                )
            )
            == rc.XM_INVALID_CONFIG
        )

    def test_wrong_direction_rejected(self):
        assert (
            self.run_one(
                lambda ctx, xm: xm.create_sampling_port("TM_MON", 64, rc.XM_SOURCE_PORT)
            )
            == rc.XM_INVALID_CONFIG
        )

    def test_invalid_direction_value(self):
        assert (
            self.run_one(lambda ctx, xm: xm.create_sampling_port("TM_MON", 64, 2))
            == rc.XM_INVALID_PARAM
        )

    def test_size_mismatch_rejected(self):
        assert (
            self.run_one(
                lambda ctx, xm: xm.create_sampling_port(
                    "TM_MON", 16, rc.XM_DESTINATION_PORT
                )
            )
            == rc.XM_INVALID_CONFIG
        )

    def test_negative_refresh_rejected(self):
        assert (
            self.run_one(
                lambda ctx, xm: xm.create_sampling_port(
                    "TM_MON", 64, rc.XM_DESTINATION_PORT, -5
                )
            )
            == rc.XM_INVALID_PARAM
        )

    def test_queuing_create_on_sampling_channel_rejected(self):
        assert (
            self.run_one(
                lambda ctx, xm: xm.create_queuing_port(
                    "TM_MON", 8, 64, rc.XM_DESTINATION_PORT
                )
            )
            == rc.XM_INVALID_CONFIG
        )

    def test_write_on_destination_port_is_mode_error(self):
        def fn(ctx, xm):
            port = xm.create_sampling_port("TM_MON", 64, rc.XM_DESTINATION_PORT, 0)
            return xm.write_sampling_message(port, b"x" * 8)

        assert self.run_one(fn) == rc.XM_INVALID_MODE

    @pytest.mark.parametrize("desc", [-1, 2, 16])
    def test_bad_descriptor(self, desc):
        assert (
            self.run_one(
                lambda ctx, xm: xm.call(
                    "XM_read_sampling_message",
                    desc,
                    xm.scratch.alloc(64),
                    64,
                    xm.scratch.alloc(4),
                )
            )
            == rc.XM_INVALID_PARAM
        )


class TestQueuingFlow:
    def test_fdir_event_to_io(self):
        sent = {}

        def payload(ctx, xm):
            port = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)
            sent.setdefault("codes", []).append(
                xm.send_queuing_message(port, b"EVENT" + bytes(43))
            )

        system = IpcHarness.run_with_payload(payload, frames=2)
        assert sent["codes"][0] == rc.XM_OK
        # The IO app printed the downlink of the FDIR event.
        io_lines = system.sim.machine.uart.lines("IO")
        assert any("FDIR event" in line for line in io_lines)

    def test_queue_overflow_returns_no_space(self):
        out = {}

        def payload(ctx, xm):
            if out:
                return
            port = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)
            codes = [xm.send_queuing_message(port, bytes(48)) for _ in range(10)]
            out["codes"] = codes

        IpcHarness.run_with_payload(payload)
        assert out["codes"][:8] == [rc.XM_OK] * 8
        assert out["codes"][8:] == [rc.XM_NO_SPACE] * 2

    def test_fifo_ordering(self):
        out = {}

        def payload(ctx, xm):
            if out:
                return
            src = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)
            for i in range(3):
                xm.send_queuing_message(src, bytes([i]) * 4)
            chan = ctx.kernel.ipc.channels["CH_FDIR_EVT"]
            out["order"] = [msg[0][0] for msg in chan.queue]

        IpcHarness.run_with_payload(payload)
        assert out["order"] == [0, 1, 2]

    def test_oversized_message_rejected(self):
        out = {}

        def payload(ctx, xm):
            if out:
                return
            port = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)
            out["rc"] = xm.send_queuing_message(port, bytes(49))

        IpcHarness.run_with_payload(payload)
        assert out["rc"] == rc.XM_INVALID_PARAM

    def test_zero_size_rejected(self):
        out = {}

        def payload(ctx, xm):
            if out:
                return
            port = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)
            out["rc"] = xm.call(
                "XM_send_queuing_message", port, xm.scratch.alloc(8), 0
            )

        IpcHarness.run_with_payload(payload)
        assert out["rc"] == rc.XM_INVALID_PARAM


class TestPortStatusAndFlush:
    def test_port_status(self):
        out = {}

        def payload(ctx, xm):
            if out:
                return
            port = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)
            xm.send_queuing_message(port, bytes(10))
            code, status = xm.get_port_status(port)
            out["code"], out["status"] = code, status

        IpcHarness.run_with_payload(payload)
        assert out["code"] == rc.XM_OK
        assert out["status"].pending_messages == 1
        assert out["status"].last_message_size == 10

    def test_flush_clears_queue(self):
        out = {}

        def payload(ctx, xm):
            if out:
                return
            port = xm.create_queuing_port("FDIR_EVT", 8, 48, rc.XM_SOURCE_PORT)
            xm.send_queuing_message(port, bytes(10))
            xm.call("XM_flush_port", port)
            _, status = xm.get_port_status(port)
            out["pending"] = status.pending_messages

        IpcHarness.run_with_payload(payload)
        assert out["pending"] == 0

    def test_flush_bad_descriptor(self):
        out = {}

        def payload(ctx, xm):
            out.setdefault("rc", xm.call("XM_flush_port", 16))

        IpcHarness.run_with_payload(payload)
        assert out["rc"] == rc.XM_INVALID_PARAM

    def test_port_info_services(self):
        out = {}

        def payload(ctx, xm):
            if out:
                return
            name = xm.place_cstring("FDIR_EVT")
            info = xm.scratch.alloc(12)
            out["q"] = xm.call("XM_get_queuing_port_info", name, info)
            name2 = xm.place_cstring("TM_MON")
            out["s"] = xm.call("XM_get_sampling_port_info", name2, info)
            out["wrong"] = xm.call("XM_get_sampling_port_info", name, info)

        IpcHarness.run_with_payload(payload)
        assert out["q"] == rc.XM_OK
        assert out["s"] == rc.XM_OK
        assert out["wrong"] == rc.XM_INVALID_CONFIG


class TestChannelPrimitives:
    def test_sampling_validity_window(self):
        from repro.xm.config import ChannelConfig

        chan = SamplingChannel(ChannelConfig("c", "sampling", 8, refresh_us=100))
        assert not chan.is_valid(0)
        chan.store(b"x", 50)
        assert chan.is_valid(100)
        assert chan.is_valid(150)
        assert not chan.is_valid(151)

    def test_queuing_depth(self):
        from repro.xm.config import ChannelConfig

        chan = QueuingChannel(ChannelConfig("c", "queuing", 8, depth=2))
        assert chan.push(b"a", 0)
        assert chan.push(b"b", 1)
        assert not chan.push(b"c", 2)
        assert chan.dropped == 1
        assert chan.pop()[0] == b"a"
