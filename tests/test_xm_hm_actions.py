"""Tests for configurable Health Monitor actions and containment policy."""

import pytest

from repro.testbed import build_system
from repro.testbed.eagleeye import eagleeye_config
from repro.xm.config import config_from_xml, config_to_xml
from repro.xm.hm import DEFAULT_ACTIONS, HealthMonitor, HmAction, HmEvent
from repro.xm.partition import PartitionState


def system_with_actions(actions: dict[str, str], fdir_payload=None):
    config = eagleeye_config()
    config.hm_actions.update(actions)
    sim = build_system(fdir_payload=fdir_payload, config=config)
    return sim, sim.boot()


class TestDefaultPolicy:
    def test_default_actions_conservative(self):
        assert DEFAULT_ACTIONS[HmEvent.MEM_PROTECTION] is HmAction.HALT_PARTITION
        assert DEFAULT_ACTIONS[HmEvent.FATAL_ERROR] is HmAction.HALT_SYSTEM
        assert DEFAULT_ACTIONS[HmEvent.TEMPORAL_VIOLATION] is HmAction.LOG

    def test_unconfigured_event_logs(self):
        hm = HealthMonitor(actions={})
        assert hm.action_for(HmEvent.WATCHDOG) is HmAction.LOG


class TestConfiguredActions:
    def test_config_overrides_default(self):
        _sim, kernel = system_with_actions(
            {"TEMPORAL_VIOLATION": "halt_partition"}
        )
        assert kernel.hm.actions[HmEvent.TEMPORAL_VIOLATION] is HmAction.HALT_PARTITION

    def test_temporal_violation_halts_offender_when_configured(self):
        def hog(ctx, xm):
            ctx.consume(60_000)

        sim, kernel = system_with_actions(
            {"TEMPORAL_VIOLATION": "halt_partition"}, fdir_payload=hog
        )
        sim.run_major_frames(1)
        assert kernel.partitions[0].state is PartitionState.HALTED
        assert kernel.partitions[0].halted_by == "HM:TEMPORAL_VIOLATION"

    def test_warm_reset_action_restarts_partition(self):
        def wild(ctx, xm):
            ctx.partition.address_space.read(0x40140000, 4)

        sim, kernel = system_with_actions(
            {"MEM_PROTECTION": "reset_partition_warm"}, fdir_payload=wild
        )
        sim.run_major_frames(1)
        fdir = kernel.partitions[0]
        # Reset instead of halted: the partition keeps flying.
        assert fdir.state is not PartitionState.HALTED
        assert fdir.reset_counter >= 1

    def test_ignore_action_leaves_partition_running(self):
        def wild(ctx, xm):
            ctx.partition.address_space.read(0x40140000, 4)

        sim, kernel = system_with_actions(
            {"MEM_PROTECTION": "ignore"}, fdir_payload=wild
        )
        sim.run_major_frames(1)
        assert kernel.partitions[0].state.runnable()

    def test_halt_system_action(self):
        def wild(ctx, xm):
            ctx.partition.address_space.read(0x40140000, 4)

        sim, kernel = system_with_actions(
            {"MEM_PROTECTION": "halt_system"}, fdir_payload=wild
        )
        sim.run_major_frames(1)
        assert kernel.is_halted()

    def test_unknown_event_name_rejected(self):
        with pytest.raises(KeyError):
            system_with_actions({"NOT_AN_EVENT": "log"})

    def test_unknown_action_name_rejected(self):
        with pytest.raises(ValueError):
            system_with_actions({"MEM_PROTECTION": "explode"})


class TestHmActionsXmlRoundTrip:
    def test_actions_survive_xml(self):
        config = eagleeye_config()
        config.hm_actions["TEMPORAL_VIOLATION"] = "halt_partition"
        config.hm_actions["MEM_PROTECTION"] = "reset_partition_cold"
        parsed = config_from_xml(config_to_xml(config))
        assert parsed.hm_actions == config.hm_actions

    def test_empty_actions_round_trip(self):
        parsed = config_from_xml(config_to_xml(eagleeye_config()))
        assert parsed.hm_actions == {}


class TestContainmentUnderCampaignPolicy:
    def test_stricter_policy_changes_multicall_outcome(self):
        """With TEMPORAL_VIOLATION -> halt_partition, the big batch gets
        its partition halted: same defect, harsher containment."""
        import struct

        from repro.testbed.eagleeye import partition_area_base
        from repro.xal.runtime import TEST_BUFFER_OFFSET
        from repro.xm.api import hypercall_by_name

        state = {}

        def payload(ctx, xm):
            if "range" not in state:
                base = partition_area_base(0) + TEST_BUFFER_OFFSET
                entry = struct.pack(
                    ">III", hypercall_by_name("XM_mask_irq").number, 1, 1
                )
                xm.write_bytes(base, entry * 4096)
                state["range"] = (base, base + 4096 * 12)
            start, end = state["range"]
            xm.call("XM_multicall", start, end)

        sim, kernel = system_with_actions(
            {"TEMPORAL_VIOLATION": "halt_partition"}, fdir_payload=payload
        )
        sim.run_major_frames(1)
        assert kernel.partitions[0].state is PartitionState.HALTED
        # Other partitions keep their slots.
        assert kernel.partitions[1].state.runnable()
