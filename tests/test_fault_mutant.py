"""Unit tests for mutant generation and symbol resolution."""

import pytest

from repro.fault.apimodel import api_model_from_table
from repro.fault.combinator import CartesianStrategy
from repro.fault.dictionaries import DictionarySet, Symbol
from repro.fault.matrix import build_matrix
from repro.fault.mutant import (
    ArgSpec,
    BATCH_ENTRIES,
    default_layout,
    generate_mutants,
)
from repro.testbed.eagleeye import partition_area_base
from repro.xal.runtime import TEST_BUFFER_OFFSET, TEST_BUFFER_SIZE


class TestLayout:
    def test_layout_inside_fdir_test_window(self):
        layout = default_layout()
        window_start = partition_area_base(0) + TEST_BUFFER_OFFSET
        window_end = window_start + TEST_BUFFER_SIZE
        assert window_start <= layout.valid_buffer < window_end
        assert window_start <= layout.batch_start < layout.batch_end <= window_end

    def test_unaligned_buffer_is_odd(self):
        assert default_layout().unaligned_buffer % 2 == 1

    def test_name_resolution_per_function(self):
        layout = default_layout()
        sampling = layout.resolve(Symbol.VALID_NAME, "XM_create_sampling_port")
        queuing = layout.resolve(Symbol.VALID_NAME, "XM_create_queuing_port")
        assert sampling == layout.names["TM_MON"]
        assert queuing == layout.names["FDIR_EVT"]
        assert sampling != queuing

    def test_batch_bounds(self):
        layout = default_layout()
        assert layout.batch_end - layout.batch_start == BATCH_ENTRIES * 12

    def test_staging_writes_cover_all_symbols(self):
        layout = default_layout()
        staged = {addr for addr, _data in layout.staging_writes()}
        assert layout.names["TM_MON"] in staged
        assert layout.unterminated_name in staged
        assert layout.batch_start in staged

    def test_staged_names_are_nul_terminated(self):
        for addr, data in default_layout().staging_writes():
            del addr
            if data.startswith(b"TM_MON"):
                assert data.endswith(b"\0")

    def test_unterminated_name_has_no_nul(self):
        layout = default_layout()
        for addr, data in layout.staging_writes():
            if addr == layout.unterminated_name:
                assert b"\0" not in data


class TestArgSpec:
    def test_literal_resolution(self):
        arg = ArgSpec("x", "42", value=42)
        assert arg.resolve(default_layout(), "F") == 42

    def test_symbol_resolution(self):
        arg = ArgSpec("p", "VALID", symbol=Symbol.VALID_BUFFER.value)
        assert arg.resolve(default_layout(), "F") == default_layout().valid_buffer


class TestMutantGeneration:
    def setup_method(self):
        self.model = api_model_from_table()
        self.dicts = DictionarySet()

    def mutants_for(self, name):
        fn = self.model.lookup(name)
        matrix = build_matrix(fn, self.dicts)
        return list(generate_mutants(matrix, CartesianStrategy()))

    def test_one_mutant_per_dataset(self):
        mutants = self.mutants_for("XM_reset_system")
        assert len(mutants) == 5

    def test_test_ids_unique_and_ordered(self):
        mutants = self.mutants_for("XM_set_timer")
        ids = [m.spec.test_id for m in mutants]
        assert len(set(ids)) == len(ids) == 32
        assert ids[0] == "XM_set_timer#0000"

    def test_c_source_contains_invocation(self):
        mutant = self.mutants_for("XM_reset_system")[2]
        assert "XM_reset_system(" in mutant.c_source
        assert "(xm_u32_t)2" in mutant.c_source
        assert mutant.filename == "mutant_XM_reset_system#0002.c"

    def test_c_source_symbolic_macros(self):
        mutants = self.mutants_for("XM_multicall")
        valid_valid = [
            m
            for m in mutants
            if m.spec.arg_labels() == ("VALID", "VALID")
        ]
        assert len(valid_valid) == 1
        src = valid_valid[0].c_source
        assert "TP_BATCH_START" in src and "TP_BATCH_END" in src

    def test_c_source_llong_suffix(self):
        mutants = self.mutants_for("XM_set_timer")
        with_min = [m for m in mutants if "LLONG_MIN" in m.spec.arg_labels()]
        assert "LL" in with_min[0].c_source

    def test_spec_describe(self):
        mutant = self.mutants_for("XM_set_timer")[0]
        text = mutant.spec.describe()
        assert text.startswith("XM_set_timer(")
        assert "HW_CLOCK" in text

    def test_resolved_args_match_c_semantics(self):
        layout = default_layout()
        for mutant in self.mutants_for("XM_reset_system"):
            resolved = mutant.spec.resolve_args(layout)
            assert len(resolved) == 1
            assert 0 <= resolved[0] <= 0xFFFFFFFF
