"""Analysis-path edge cases the warehouse ingest exposed.

Offline tooling feeds arbitrary logs back through the stats and report
layers: empty logs, logs that are nothing but quarantine skips, and
logs mixing arbitrated verdicts with quarantined records.  None of
those shapes occur in a healthy live run, so they historically went
untested — and an offline analyser that crashes on them loses data.
"""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.resilience import quarantined_record
from repro.fault.report import full_report
from repro.fault.stats import (
    durability_summary,
    rc_distribution,
    tests_per_category,
    wall_time_stats,
)
from repro.fault.testlog import CampaignLog, TestRecord
from repro.results import ResultsWarehouse, drift_audit


def make_spec(test_id="q#0", function="XM_mask_irq"):
    return TestCallSpec(
        test_id,
        function,
        "Interrupt Management",
        (ArgSpec("irqLine", "1", value=1),),
    )


def make_record(test_id, **overrides):
    return TestRecord(
        test_id=test_id,
        function=overrides.pop("function", "XM_mask_irq"),
        category=overrides.pop("category", "Interrupt Management"),
        kernel_version=overrides.pop("kernel_version", "3.4.0"),
        frames=overrides.pop("frames", 2),
        **overrides,
    )


class TestZeroRecordLog:
    def test_stats_do_not_crash(self):
        log = CampaignLog([])
        assert durability_summary(log)["records"] == 0
        assert wall_time_stats(log)["total"] == 0.0
        assert rc_distribution(log) == {}
        assert tests_per_category(log) == {}

    def test_full_report_renders(self):
        result = Campaign().analyse(CampaignLog([]))
        report = full_report(result)
        assert "Tests executed    : 0" in report

    def test_warehouse_ingest_of_empty_log(self):
        with ResultsWarehouse() as wh:
            report = wh.ingest(CampaignLog([]), campaign_id="empty")
            assert report.inserted == 0
            assert wh.row_count("empty") == 0
            assert wh.verdict_summary("empty") == {}


class TestAllQuarantinedLog:
    @pytest.fixture()
    def log(self):
        campaign = Campaign(functions=("XM_reset_system",))
        records = [
            quarantined_record(
                spec,
                campaign.kernel_version,
                campaign.frames,
                {"observations": ["worker_killed"]},
            )
            for spec in campaign.iter_specs()
        ]
        return CampaignLog(records)

    def test_summary_counts_every_skip(self, log):
        summary = durability_summary(log)
        assert summary["quarantined"] == len(log) == 5
        assert summary["worker_killed"] == 5  # the verdict is preserved

    def test_wall_times_are_all_zero(self, log):
        # Skips never execute, so timing stats must not fabricate data.
        assert wall_time_stats(log)["total"] == 0.0

    def test_full_report_renders(self, log):
        report = full_report(Campaign(functions=("XM_reset_system",)).analyse(log))
        assert "worker killed" in report.lower() or "Worker" in report


class TestMixedArbitratedQuarantined:
    @pytest.fixture()
    def log(self):
        # Real specs, so the offline analyser can rebuild them from the
        # record labels (fabricated ids would not be oracle-evaluable).
        campaign = Campaign(functions=("XM_reset_system",))
        specs = list(campaign.iter_specs())[:3]

        def from_spec(spec, **overrides):
            return make_record(
                spec.test_id,
                function=spec.function,
                category=spec.category,
                arg_labels=tuple(a.label for a in spec.args),
                **overrides,
            )

        return CampaignLog(
            [
                from_spec(specs[0], attempts=3, arbitrated=True),
                from_spec(specs[1], attempts=1),
                from_spec(specs[2], worker_killed=True, quarantined=True),
            ]
        )

    def test_summary_separates_the_signals(self, log):
        summary = durability_summary(log)
        assert summary["arbitrated"] == 1
        assert summary["retried_runs"] == 2  # 3 attempts = 2 extra runs
        assert summary["quarantined"] == 1
        assert summary["worker_killed"] == 1

    def test_full_report_renders(self, log):
        report = full_report(Campaign().analyse(log))
        assert "Tests executed    : 3" in report

    def test_warehouse_preserves_both_flags(self, log):
        with ResultsWarehouse() as wh:
            wh.ingest(log, campaign_id="mixed")
            rows = wh.connection.execute(
                "SELECT arbitrated, quarantined, attempts"
                " FROM results ORDER BY rowid"
            ).fetchall()
        assert rows == [(1, 0, 3), (0, 0, 1), (0, 1, 1)]

    def test_drift_audit_on_single_run_is_quiet(self, log):
        with ResultsWarehouse() as wh:
            wh.ingest(log, campaign_id="mixed")
            assert drift_audit(wh) == []
