"""Unit tests for the test-value dictionaries."""

import pytest

from repro.fault.dictionaries import (
    DictionarySet,
    Symbol,
    TestValue,
    TypeDictionary,
    builtin_dictionaries,
)


class TestTestValue:
    def test_needs_exactly_one_of_value_symbol(self):
        with pytest.raises(ValueError):
            TestValue("x")
        with pytest.raises(ValueError):
            TestValue("x", value=1, symbol=Symbol.VALID_BUFFER)

    def test_literal_of_symbolic_raises(self):
        tv = TestValue("v", symbol=Symbol.VALID_NAME)
        assert tv.is_symbolic
        with pytest.raises(ValueError):
            tv.literal()

    def test_literal_of_plain(self):
        assert TestValue("x", value=42).literal() == 42


class TestBuiltinDictionaries:
    def test_u32_matches_fig3(self):
        d = builtin_dictionaries()["xm_u32_t"]
        assert [v.value for v in d.values] == [0, 1, 2, 16, 4294967295]

    def test_s32_matches_table2(self):
        d = builtin_dictionaries()["xm_s32_t"]
        assert [v.value for v in d.values] == [
            -2147483648,
            -16,
            -1,
            0,
            1,
            2,
            16,
            2147483647,
        ]
        assert d.labels()[0] == "MIN_S32"
        assert d.labels()[-1] == "MAX_S32"

    def test_table2_asterisks(self):
        d = builtin_dictionaries()["xm_s32_t"]
        flags = [v.maybe_valid for v in d.values]
        # MIN and MAX are pure boundary values; the middle six can be
        # valid depending on the hypercall (Table II asterisks).
        assert flags == [False, True, True, True, True, True, True, False]

    def test_time_dictionary_has_llong_min(self):
        d = builtin_dictionaries()["xmTime_t"]
        assert -(2**63) in [v.value for v in d.values]
        assert 1 in [v.value for v in d.values]

    def test_clock_context_dictionary(self):
        d = builtin_dictionaries()["clock_id"]
        assert [v.value for v in d.values] == [0, 1]

    def test_pointer_dictionaries_have_symbols(self):
        dicts = builtin_dictionaries()
        for name in ("struct_ptr", "buffer_ptr", "name_ptr", "out_ptr_small"):
            assert any(v.is_symbolic for v in dicts[name].values), name

    def test_batch_dictionaries_distinct_symbols(self):
        dicts = builtin_dictionaries()
        start = [v.symbol for v in dicts["batch_ptr_start"].values if v.is_symbolic]
        end = [v.symbol for v in dicts["batch_ptr_end"].values if v.is_symbolic]
        assert start == [Symbol.VALID_BATCH_START]
        assert end == [Symbol.VALID_BATCH_END]

    def test_all_have_descriptions_or_values(self):
        for d in builtin_dictionaries().values():
            assert len(d) >= 2


class TestDictionarySet:
    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="no test-value dictionary"):
            DictionarySet().lookup("nope")

    def test_contains(self):
        dicts = DictionarySet()
        assert "xm_u32_t" in dicts
        assert "nope" not in dicts

    def test_add_replaces(self):
        dicts = DictionarySet()
        custom = TypeDictionary("xm_u32_t", "xm_u32_t", (TestValue("0", value=0),))
        dicts.add(custom)
        assert len(dicts.lookup("xm_u32_t")) == 1

    def test_without_valid_values_strips_asterisked(self):
        stripped = DictionarySet().without_valid_values()
        s32 = stripped.lookup("xm_s32_t")
        assert [v.value for v in s32.values] == [-2147483648, 2147483647]

    def test_without_valid_values_keeps_nonempty(self):
        stripped = DictionarySet().without_valid_values()
        # clock_id is all maybe-valid: the first entry is kept.
        assert len(stripped.lookup("clock_id")) == 1

    def test_without_valid_values_drops_symbols(self):
        stripped = DictionarySet().without_valid_values()
        assert not any(v.is_symbolic for v in stripped.lookup("struct_ptr").values)
