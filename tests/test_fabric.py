"""Distributed fabric: frames, config, identity, failure recovery."""

import asyncio
import multiprocessing
import random
import socket
import threading

import pytest

from repro.fabric import (
    FabricConfig,
    FabricError,
    FrameError,
    coordinate,
    encode_frame,
    read_frame,
)
from repro.fabric.frames import MAX_FRAME
from repro.fault import wire
from repro.fault.campaign import Campaign
from repro.fault.executor import FAULT_ONCE_DIR_ENV, KILL_SPEC_ENV
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.resilience import Quarantine, RetryPolicy
from repro.fault.testlog import CampaignLog, Invocation, TestRecord

#: The three hypercalls carrying the paper's findings: 62 tests, 9 issues.
TRIO = ("XM_reset_system", "XM_set_timer", "XM_multicall")

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="local fabric workers require the fork start method",
)


def strip_transient(record):
    """Identity comparison: everything but per-run provenance."""
    data = record.to_dict()
    data.pop("wall_time_s")
    data.pop("host_context")
    # A record may legitimately consume a different number of runs
    # depending on which worker died when; the verdict must not change.
    data.pop("attempts")
    data.pop("arbitrated")
    return data


def read_one(payload: bytes):
    """Run read_frame over an in-memory StreamReader fed ``payload``."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestFrameCodec:
    def test_roundtrip(self):
        message = {"type": "lease", "indices": [3, 1, 2], "nested": {"a": None}}
        assert read_one(encode_frame(message)) == message

    def test_clean_eof_returns_none(self):
        assert read_one(b"") is None

    def test_truncated_length_prefix(self):
        with pytest.raises(FrameError, match="mid-prefix"):
            read_one(b"\x00\x00")

    def test_truncated_body(self):
        frame = encode_frame({"type": "hello"})
        with pytest.raises(FrameError, match="mid-frame"):
            read_one(frame[:-3])

    def test_garbage_body(self):
        body = b"not json at all"
        payload = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            read_one(payload)

    def test_non_object_body_rejected(self):
        body = b"[1, 2, 3]"
        payload = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError, match="object"):
            read_one(payload)

    def test_oversized_frame_rejected_without_reading_body(self):
        payload = (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(FrameError, match="exceeds"):
            read_one(payload)

    def test_encode_rejects_unserialisable(self):
        with pytest.raises(FrameError):
            encode_frame({"x": object()})


class TestFabricConfig:
    def test_roundtrip_rebuilds_identical_spec_table(self):
        campaign = Campaign(functions=TRIO)
        config = FabricConfig.from_campaign(campaign)
        rebuilt = FabricConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert wire.build_spec_table(rebuilt.recipe()) == list(
            campaign.iter_specs()
        )

    def test_config_is_json_clean(self):
        import json

        config = FabricConfig.from_campaign(Campaign(functions=TRIO))
        wire_form = json.loads(json.dumps(config.to_dict()))
        assert FabricConfig.from_dict(wire_form) == config

    def test_custom_model_rejected(self):
        from repro.fault.apimodel import ApiModel
        from repro.fault.campaign import _default_model

        base = _default_model()
        clone = ApiModel(
            kernel_name=base.kernel_name, functions=dict(base.functions)
        )
        campaign = Campaign(functions=TRIO, model=clone)
        with pytest.raises(FabricError, match="model"):
            FabricConfig.from_campaign(campaign)

    def test_custom_system_factory_rejected(self):
        campaign = Campaign(functions=TRIO, system_factory=lambda: None)
        with pytest.raises(FabricError, match="testbed"):
            FabricConfig.from_campaign(campaign)

    def test_malformed_dict_rejected(self):
        with pytest.raises(FabricError, match="malformed"):
            FabricConfig.from_dict({"kernel_version": "3.4.0"})

    def test_unknown_strategy_rejected(self):
        config = FabricConfig.from_campaign(Campaign(functions=TRIO))
        data = config.to_dict()
        data["strategy"] = {"name": "no-such-strategy"}
        with pytest.raises(FabricError, match="strategy"):
            FabricConfig.from_dict(data).recipe()


def random_record(rng: random.Random) -> TestRecord:
    """One randomized TestRecord exercising optional-field combinations."""
    invocations = [
        Invocation(
            returned=rng.random() < 0.8,
            rc=rng.choice([None, 0, -1, -2, 2**31 - 1, -(2**31)]),
            note=rng.choice(["", "XM_INVALID_PARAM", "unicode: é☃"]),
            state=rng.choice([None, {"clock": rng.randrange(1 << 32)}]),
        )
        for _ in range(rng.randrange(4))
    ]
    return TestRecord(
        test_id=f"XM_fuzz#{rng.randrange(10_000):04d}",
        function=rng.choice(["XM_set_timer", "XM_multicall", "XM_fuzz"]),
        category=rng.choice(["Time Management", "Miscellaneous"]),
        arg_labels=tuple(
            rng.choice(["MAX", "MIN", "zero", "rnd"])
            for _ in range(rng.randrange(4))
        ),
        resolved_args=tuple(
            rng.randrange(-(1 << 31), 1 << 31) for _ in range(rng.randrange(4))
        ),
        invocations=invocations,
        sim_crashed=rng.random() < 0.1,
        sim_hung=rng.random() < 0.1,
        kernel_halted=rng.random() < 0.1,
        halt_reason=rng.choice(["", "panic"]),
        resets=[("warm", "hm")] * rng.randrange(3),
        hm_events=[("XM_HM_EV_MEM_PROTECTION", rng.randrange(4), "wf")]
        * rng.randrange(3),
        overruns=rng.randrange(3),
        test_partition_state=rng.choice(["", "SUSPENDED"]),
        console_tail=[f"line{i}" for i in range(rng.randrange(3))],
        kernel_version=rng.choice(["3.4.0", "3.4.1"]),
        frames=rng.randrange(4),
        wall_time_s=rng.random(),
        worker_killed=rng.random() < 0.1,
        watchdog_expired=rng.random() < 0.1,
        attempts=rng.randrange(1, 4),
        arbitrated=rng.random() < 0.2,
        quarantined=rng.random() < 0.1,
        host_context=rng.choice(
            [None, {"fabric_worker": "w", "worker_host": "h", "attempt": 2}]
        ),
    )


class TestWireFuzz:
    """Randomized roundtrips: the codecs must be lossless on any record."""

    def test_record_codec_fuzz(self):
        rng = random.Random(0xFAB)
        for _ in range(200):
            record = random_record(rng)
            assert wire.record_from_dict(wire.record_to_dict(record)) == record
            assert wire.decode_record(wire.encode_record(record)) == record

    def test_record_survives_a_frame(self):
        rng = random.Random(0xFAB2)
        for _ in range(50):
            record = random_record(rng)
            frame = read_one(
                encode_frame(
                    {"type": "records", "records": [wire.encode_record(record)]}
                )
            )
            assert wire.decode_record(frame["records"][0]) == record

    def test_spec_codec_fuzz(self):
        rng = random.Random(0xFAB3)
        for index in range(100):
            spec = TestCallSpec(
                f"XM_fuzz#{index:04d}",
                "XM_fuzz",
                "Miscellaneous",
                tuple(
                    ArgSpec(
                        f"arg{i}",
                        rng.choice(["MAX", "MIN", "zero"]),
                        rng.randrange(-(1 << 31), 1 << 31),
                        symbol=rng.choice([None, "INT32_MAX"]),
                    )
                    for i in range(rng.randrange(4))
                ),
            )
            assert wire.spec_from_dict(wire.spec_to_dict(spec)) == spec


@needs_fork
class TestFabricIdentity:
    """Fabric campaigns must be record-for-record equal to serial runs."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return Campaign(functions=TRIO)

    @pytest.fixture(scope="class")
    def serial(self, campaign):
        return campaign.run()

    def test_loopback_two_workers_equals_serial(self, campaign, serial):
        result = coordinate(campaign, workers=2)
        assert [strip_transient(r) for r in result.log] == [
            strip_transient(r) for r in serial.log
        ]
        for record in result.log:
            assert record.host_context["fabric_worker"].startswith("local-")

    def test_single_worker_equals_serial(self, campaign, serial):
        result = coordinate(campaign, workers=1)
        assert [strip_transient(r) for r in result.log] == [
            strip_transient(r) for r in serial.log
        ]

    def test_explicit_shard_size_equals_serial(self, campaign, serial):
        result = coordinate(campaign, workers=2, shard_size=5)
        assert [strip_transient(r) for r in result.log] == [
            strip_transient(r) for r in serial.log
        ]


@needs_fork
class TestFabricResume:
    def test_interrupted_fabric_run_resumes_losslessly(self, tmp_path):
        campaign = Campaign(functions=TRIO)
        baseline = campaign.run()
        path = tmp_path / "fabric.jsonl"

        def interrupt(done, total, record):
            if done == 15:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            coordinate(
                campaign, workers=2, progress=interrupt, log_path=path
            )
        partial = CampaignLog.load(path)
        assert 1 <= len(partial) < baseline.total_tests

        resumed = coordinate(
            campaign, workers=2, resume_from=partial, log_path=path
        )
        assert resumed.total_tests == baseline.total_tests == 62
        assert [strip_transient(r) for r in resumed.log] == [
            strip_transient(r) for r in baseline.log
        ]
        assert len(CampaignLog.load(path)) == baseline.total_tests


@needs_fork
class TestFabricKillRecovery:
    def victim_of(self, campaign):
        specs = list(campaign.iter_specs())
        return [s for s in specs if s.function == "XM_set_timer"][5]

    def test_transient_kill_recovers_every_record(self, monkeypatch, tmp_path):
        # The kill fires exactly once: the re-leased probe run is
        # innocent, so the fabric must recover the full campaign with
        # no worker_killed verdicts at all.
        campaign = Campaign(functions=TRIO)
        baseline = campaign.run()
        victim = self.victim_of(campaign)
        once_dir = tmp_path / "once"
        once_dir.mkdir()
        monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
        monkeypatch.setenv(FAULT_ONCE_DIR_ENV, str(once_dir))

        result = coordinate(campaign, workers=2)
        assert not any(r.worker_killed for r in result.log)
        assert [strip_transient(r) for r in result.log] == [
            strip_transient(r) for r in baseline.log
        ]
        assert result.execution_stats["probe_respawns"] >= 1

    def test_persistent_killer_confirmed_and_quarantined(
        self, monkeypatch, tmp_path
    ):
        campaign = Campaign(functions=TRIO)
        baseline = campaign.run()
        victim = self.victim_of(campaign)
        monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
        quarantine_path = tmp_path / "quarantine.json"

        result = coordinate(
            campaign, workers=2, quarantine_path=quarantine_path
        )
        killed = [r for r in result.log if r.worker_killed]
        assert [r.test_id for r in killed] == [victim.test_id]
        assert killed[0].attempts >= 2  # quorum, not a single observation
        survivors = {
            r.test_id: strip_transient(r)
            for r in result.log
            if not r.worker_killed
        }
        expected = {
            r.test_id: strip_transient(r)
            for r in baseline.log
            if r.test_id != victim.test_id
        }
        assert survivors == expected
        assert victim.test_id in Quarantine.load(quarantine_path)

        # A later campaign skips the quarantined killer with a record.
        monkeypatch.delenv(KILL_SPEC_ENV)
        rerun = coordinate(
            campaign, workers=2, quarantine_path=quarantine_path
        )
        inherited = {r.test_id for r in rerun.log if r.quarantined}
        assert inherited == {victim.test_id}
        assert rerun.total_tests == baseline.total_tests

    def test_single_shot_policy_blames_first_death(self, monkeypatch):
        campaign = Campaign(functions=TRIO)
        victim = self.victim_of(campaign)
        monkeypatch.setenv(KILL_SPEC_ENV, victim.test_id)
        result = coordinate(
            campaign,
            workers=2,
            retry_policy=RetryPolicy(max_attempts=1, quorum=1),
        )
        killed = [r for r in result.log if r.worker_killed]
        assert [r.test_id for r in killed] == [victim.test_id]
        assert killed[0].attempts == 1


@needs_fork
class TestRogueClients:
    """Malformed traffic costs the offender its connection, nothing more."""

    def run_with_rogue(self, campaign, rogue):
        threads = []

        def on_listen(host, port):
            thread = threading.Thread(target=rogue, args=(host, port))
            thread.start()
            threads.append(thread)

        result = coordinate(campaign, workers=2, on_listen=on_listen)
        for thread in threads:
            thread.join(timeout=10)
        return result

    def test_pre_hello_garbage_is_dropped(self):
        campaign = Campaign(functions=TRIO)
        serial = campaign.run()

        def rogue(host, port):
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(b"\xde\xad\xbe\xef not a frame at all")

        result = self.run_with_rogue(campaign, rogue)
        assert [strip_transient(r) for r in result.log] == [
            strip_transient(r) for r in serial.log
        ]

    def test_post_hello_garbage_drops_only_the_offender(self):
        campaign = Campaign(functions=TRIO)
        serial = campaign.run()

        def rogue(host, port):
            from repro.fabric.config import PROTOCOL_VERSION

            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(
                    encode_frame(
                        {
                            "type": "hello",
                            "name": "rogue",
                            "host": "nowhere",
                            "pid": 0,
                            "protocol": PROTOCOL_VERSION,
                        }
                    )
                )
                # Grab a lease, then talk garbage: the coordinator must
                # re-lease the shard elsewhere and drop this client.
                sock.sendall(encode_frame({"type": "lease-request"}))
                sock.recv(4096)
                sock.sendall(b"\xff\xff\xff\xff garbage")

        with pytest.warns(UserWarning, match="malformed|lost"):
            result = self.run_with_rogue(campaign, rogue)
        assert [strip_transient(r) for r in result.log] == [
            strip_transient(r) for r in serial.log
        ]


class TestThreadWatchdog:
    """The per-test watchdog must still fire off the main thread."""

    def run_off_main_thread(self, fn):
        box = {}

        def body():
            try:
                box["result"] = fn()
            except BaseException as exc:  # noqa: BLE001
                box["raised"] = exc

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        return box

    def test_hung_test_expires_off_main_thread(self, monkeypatch):
        from repro.fault.executor import HANG_SPEC_ENV, TestExecutor

        campaign = Campaign(functions=("XM_get_time",))
        specs = list(campaign.iter_specs())
        monkeypatch.setenv(HANG_SPEC_ENV, specs[0].test_id)

        def run():
            executor = TestExecutor(
                kernel_version=campaign.kernel_version, timeout_s=0.3
            )
            executor.prepare()
            return executor.run(specs[0])

        box = self.run_off_main_thread(run)
        assert "raised" not in box, box.get("raised")
        assert box["result"].watchdog_expired

    def test_normal_test_unaffected_off_main_thread(self):
        from repro.fault.executor import TestExecutor

        campaign = Campaign(functions=("XM_get_time",))
        specs = list(campaign.iter_specs())

        def run():
            executor = TestExecutor(
                kernel_version=campaign.kernel_version, timeout_s=5.0
            )
            executor.prepare()
            return executor.run(specs[0])

        box = self.run_off_main_thread(run)
        assert "raised" not in box, box.get("raised")
        assert not box["result"].watchdog_expired
