"""Meta-test: documentation code blocks actually run.

The tutorial and the README quickstart are executed verbatim; docs that
rot break the build.
"""

import contextlib
import io
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def python_blocks(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, re.S)


class TestTutorial:
    def test_all_blocks_execute_in_order(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # blocks may write artefact files
        namespace: dict = {}
        blocks = python_blocks(ROOT / "docs" / "TUTORIAL.md")
        assert len(blocks) >= 6
        for index, block in enumerate(blocks):
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                exec(block, namespace)  # noqa: S102 - docs under test


class TestReadme:
    def test_quickstart_blocks_execute(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README lost its quickstart"
        for block in blocks:
            namespace: dict = {}
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                exec(block, namespace)  # noqa: S102 - docs under test

    def test_readme_tables_are_current(self):
        text = (ROOT / "README.md").read_text(encoding="utf-8")
        assert "39 tested = 64 %" in text
        assert "EXPERIMENTS.md" in text and "DESIGN.md" in text


class TestExperimentsNumbers:
    def test_headline_numbers_match_a_fresh_run(self):
        """EXPERIMENTS.md's totals row is regenerated, not hand-typed."""
        from repro.fault import Campaign, report

        result = Campaign.paper_campaign().run()
        totals = report.table3_totals(result)
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert f"**{totals.tests}**" in text
        assert f"**{totals.raised_issues}**" in text
