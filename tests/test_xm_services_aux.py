"""Unit tests for HM, trace, IRQ, memory, misc and SPARC services."""

import struct

import pytest

from repro.testbed.eagleeye import partition_area_base
from repro.tsim.machine import UART_BASE
from repro.xm import rc
from repro.xm.hm import HmEvent
from repro.xm.status import XmHmLogEntry, XmHmStatus, XmTraceStatus


def fdir_addr(offset=0):
    return partition_area_base(0) + 0x10000 + offset


class TestHmServices:
    def test_hm_status_counts_events(self, system):
        system.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, 0)
        addr = system.scratch()
        assert system.call("XM_hm_status", addr) == rc.XM_OK
        status = XmHmStatus.unpack(system.fdir.address_space.read(addr, XmHmStatus.SIZE))
        assert status.total_events == 1
        assert status.unread_events == 1

    def test_hm_read_consumes(self, system):
        system.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, 5, payload=42)
        addr = system.scratch()
        count = system.call("XM_hm_read", addr, 8)
        assert count == 1
        entry = XmHmLogEntry.unpack(
            system.fdir.address_space.read(addr, XmHmLogEntry.SIZE)
        )
        assert entry.event_code == HmEvent.PARTITION_ERROR.value
        assert entry.payload == 42
        assert system.call("XM_hm_read", addr, 8) == 0

    def test_hm_read_zero_count_invalid(self, system):
        assert system.call("XM_hm_read", system.scratch(), 0) == rc.XM_INVALID_PARAM

    def test_hm_read_huge_count_invalid(self, system):
        assert (
            system.call("XM_hm_read", system.scratch(), 4294967295)
            == rc.XM_INVALID_PARAM
        )

    def test_hm_read_bad_pointer(self, system):
        system.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, 0)
        assert system.call("XM_hm_read", 0, 4) == rc.XM_INVALID_PARAM

    def test_hm_seek_whence_modes(self, system):
        for _ in range(3):
            system.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, 0)
        assert system.call("XM_hm_seek", 0, 0) == rc.XM_OK  # absolute rewind
        assert system.call("XM_hm_seek", 2, 1) == rc.XM_OK  # relative
        assert system.call("XM_hm_seek", 0, 2) == rc.XM_OK  # from end

    def test_hm_seek_invalid(self, system):
        assert system.call("XM_hm_seek", 99, 0) == rc.XM_INVALID_PARAM
        assert system.call("XM_hm_seek", 0, 3) == rc.XM_INVALID_PARAM

    def test_hm_reset_events(self, system):
        system.kernel.hm.raise_event(HmEvent.PARTITION_ERROR, 1, 0)
        assert system.call("XM_hm_reset_events") == rc.XM_OK
        assert system.kernel.hm.records == []

    def test_hm_raise_event_roundtrip(self, system):
        entry = XmHmLogEntry(
            event_code=HmEvent.PARTITION_ERROR.value, partition_id=0,
            timestamp_us=0, payload=9,
        )
        addr = system.scratch()
        system.fdir.address_space.write(addr, entry.pack())
        assert system.call("XM_hm_raise_event", addr) == rc.XM_OK
        assert system.kernel.hm.events_of(HmEvent.PARTITION_ERROR)

    def test_hm_raise_event_bad_code(self, system):
        entry = XmHmLogEntry(event_code=0xFF, partition_id=0, timestamp_us=0)
        addr = system.scratch()
        system.fdir.address_space.write(addr, entry.pack())
        assert system.call("XM_hm_raise_event", addr) == rc.XM_INVALID_PARAM

    def test_hm_services_are_system_only(self, system):
        assert (
            system.call("XM_hm_status", system.scratch(1), caller=system.aocs)
            == rc.XM_PERM_ERROR
        )

    def test_hm_ring_overflow_counts_lost(self, system):
        hm = system.kernel.hm
        for _ in range(hm.capacity + 10):
            hm.raise_event(HmEvent.PARTITION_ERROR, 1, 0)
        assert hm.lost_events == 10
        assert len(hm.records) == hm.capacity


class TestTraceServices:
    def test_trace_open_own_stream(self, system):
        assert system.call("XM_trace_open", 0) == 0

    def test_trace_open_unknown_stream(self, system):
        assert system.call("XM_trace_open", 16) == rc.XM_INVALID_PARAM

    def test_trace_permissions_normal_partition(self, system):
        # AOCS (normal) may open its own stream, not others.
        assert system.call("XM_trace_open", 1, caller=system.aocs) == 1
        assert system.call("XM_trace_open", 0, caller=system.aocs) == rc.XM_PERM_ERROR

    def test_trace_read_roundtrip(self, system):
        system.kernel.tracemgr.record(0, opcode=0xAB, partition_id=0, word=3)
        addr = system.scratch()
        count = system.call("XM_trace_read", 0, addr, 4)
        assert count == 1
        from repro.xm.status import XmTraceEvent

        event = XmTraceEvent.unpack(
            system.fdir.address_space.read(addr, XmTraceEvent.SIZE)
        )
        assert event.opcode == 0xAB and event.word == 3

    def test_trace_read_bad_counts(self, system):
        assert system.call("XM_trace_read", 0, system.scratch(), 0) == rc.XM_INVALID_PARAM
        assert (
            system.call("XM_trace_read", 0, system.scratch(), 4294967295)
            == rc.XM_INVALID_PARAM
        )

    def test_trace_seek_and_status(self, system):
        for i in range(4):
            system.kernel.tracemgr.record(0, opcode=i, partition_id=0)
        assert system.call("XM_trace_seek", 0, 2, 0) == rc.XM_OK
        addr = system.scratch()
        assert system.call("XM_trace_status", 0, addr) == rc.XM_OK
        status = XmTraceStatus.unpack(
            system.fdir.address_space.read(addr, XmTraceStatus.SIZE)
        )
        assert status.total_events == 4
        assert status.unread_events == 2

    def test_trace_seek_invalid(self, system):
        assert system.call("XM_trace_seek", 0, 99, 0) == rc.XM_INVALID_PARAM

    def test_trace_flush(self, system):
        system.kernel.tracemgr.record(0, opcode=1, partition_id=0)
        assert system.call("XM_trace_flush") == rc.XM_OK
        assert system.kernel.tracemgr.streams[0].events == []


class TestIrqServices:
    def test_mask_unmask(self, system):
        assert system.call("XM_unmask_irq", 4) == rc.XM_OK
        assert system.fdir.virq_mask & (1 << 4)
        assert system.call("XM_mask_irq", 4) == rc.XM_OK
        assert not (system.fdir.virq_mask & (1 << 4))

    @pytest.mark.parametrize("line", [32, 4294967295])
    def test_line_out_of_range(self, system, line):
        assert system.call("XM_mask_irq", line) == rc.XM_INVALID_PARAM
        assert system.call("XM_set_irqpend", line) == rc.XM_INVALID_PARAM

    def test_set_irqpend(self, system):
        assert system.call("XM_set_irqpend", 7) == rc.XM_OK
        assert system.fdir.virq_pending & (1 << 7)

    def test_route_irq_valid(self, system):
        assert system.call("XM_route_irq", 0, 8, 0x18) == rc.XM_OK
        assert system.kernel.irqmgr.routes[(0, 0, 8)] == 0x18

    @pytest.mark.parametrize(
        "args",
        [(0, 0, 1), (0, 16, 1), (1, 32, 1), (2, 1, 1), (0, 8, 256), (0, 8, 4294967295)],
    )
    def test_route_irq_invalid(self, system, args):
        assert system.call("XM_route_irq", *args) == rc.XM_INVALID_PARAM

    def test_enable_irqs(self, system):
        assert system.call("XM_enable_irqs") == rc.XM_OK
        assert system.fdir.virq_mask == 0xFFFFFFFF


class TestMemoryServices:
    def test_memory_copy_between_partitions(self, system):
        src = partition_area_base(1) + 0x100
        dst = partition_area_base(2) + 0x100
        system.kernel.machine.memory.write(src, b"DATA")
        assert system.call("XM_memory_copy", 2, dst, 1, src, 4) == rc.XM_OK
        assert system.kernel.machine.memory.read(dst, 4) == b"DATA"

    def test_memory_copy_self_alias(self, system):
        src = fdir_addr(0)
        dst = fdir_addr(0x100)
        system.kernel.machine.memory.write(src, b"SELF")
        assert system.call("XM_memory_copy", -1, dst, -1, src, 4) == rc.XM_OK

    @pytest.mark.parametrize("bad", [5, 16, -16, 2147483647])
    def test_memory_copy_bad_partition(self, system, bad):
        assert (
            system.call("XM_memory_copy", bad, fdir_addr(), 0, fdir_addr(), 4)
            == rc.XM_INVALID_PARAM
        )

    def test_memory_copy_zero_size(self, system):
        assert (
            system.call("XM_memory_copy", 0, fdir_addr(), 0, fdir_addr(), 0)
            == rc.XM_INVALID_PARAM
        )

    def test_memory_copy_outside_owner_area(self, system):
        # dstAddr belongs to partition 2 but dstId names partition 1.
        dst = partition_area_base(2)
        assert (
            system.call("XM_memory_copy", 1, dst, 0, fdir_addr(), 4)
            == rc.XM_INVALID_ADDRESS
        )

    def test_memory_copy_range_overflow(self, system):
        assert (
            system.call("XM_memory_copy", 0, fdir_addr(), 0, fdir_addr(), 4294967295)
            == rc.XM_INVALID_PARAM
        )

    def test_update_page32(self, system):
        addr = fdir_addr(0x200)
        assert system.call("XM_update_page32", addr, 0xCAFEBABE) == rc.XM_OK
        assert system.kernel.machine.memory.read(addr, 4) == b"\xca\xfe\xba\xbe"

    def test_update_page32_unaligned(self, system):
        assert system.call("XM_update_page32", fdir_addr(1), 0) == rc.XM_INVALID_PARAM

    def test_update_page32_foreign_area(self, system):
        assert (
            system.call("XM_update_page32", partition_area_base(1), 0)
            == rc.XM_INVALID_ADDRESS
        )


class TestMiscServices:
    def test_write_console(self, system):
        addr = system.scratch()
        system.fdir.address_space.write(addr, b"hello from FDIR\n")
        assert system.call("XM_write_console", addr, 16) == 16
        assert "hello from FDIR" in system.sim.machine.uart.lines("FDIR")

    def test_write_console_zero_length(self, system):
        assert system.call("XM_write_console", system.scratch(), 0) == 0

    def test_write_console_bad_pointer(self, system):
        assert system.call("XM_write_console", 0, 8) == rc.XM_INVALID_PARAM

    def test_write_console_huge_length(self, system):
        assert (
            system.call("XM_write_console", system.scratch(), 4294967295)
            == rc.XM_INVALID_PARAM
        )

    def test_get_gid_by_name_partition(self, system):
        addr = system.scratch()
        system.fdir.address_space.write(addr, b"PAYLOAD\0")
        assert system.call("XM_get_gid_by_name", addr, 0) == 3

    def test_get_gid_by_name_channel(self, system):
        addr = system.scratch()
        system.fdir.address_space.write(addr, b"CH_CMD\0")
        assert system.call("XM_get_gid_by_name", addr, 1) == 1

    def test_get_gid_unknown_name(self, system):
        addr = system.scratch()
        system.fdir.address_space.write(addr, b"GHOST\0")
        assert system.call("XM_get_gid_by_name", addr, 0) == rc.XM_INVALID_CONFIG

    def test_get_gid_bad_entity(self, system):
        addr = system.scratch()
        system.fdir.address_space.write(addr, b"FDIR\0")
        assert system.call("XM_get_gid_by_name", addr, 2) == rc.XM_INVALID_PARAM

    def test_get_hpv_info(self, system):
        addr = system.scratch()
        assert system.call("XM_get_hpv_info", addr) == rc.XM_OK
        major, minor, patch, nparts = struct.unpack(
            ">IIII", system.fdir.address_space.read(addr, 16)
        )
        assert (major, minor, patch) == (3, 4, 0)
        assert nparts == 5

    def test_params_get_pct(self, system):
        addr = system.scratch()
        assert system.call("XM_params_get_pct", addr) == rc.XM_OK
        (pct,) = struct.unpack(">I", system.fdir.address_space.read(addr, 4))
        assert pct == partition_area_base(0)


class TestSparcServices:
    def test_inport_with_grant(self, system):
        # FDIR holds the apbuart0 grant; status register reads TX-ready.
        assert system.call("XM_sparc_inport", UART_BASE + 4) == 0x6

    def test_inport_without_grant(self, system):
        assert (
            system.call("XM_sparc_inport", UART_BASE + 4, caller=system.aocs)
            == rc.XM_PERM_ERROR
        )

    def test_inport_unmapped(self, system):
        assert system.call("XM_sparc_inport", 0x40000000) == rc.XM_INVALID_PARAM
        assert system.call("XM_sparc_inport", 0xFFFFFFFF) == rc.XM_INVALID_PARAM

    def test_outport_writes_uart_data(self, system):
        assert system.call("XM_sparc_outport", UART_BASE, ord("A")) == rc.XM_OK
        system.sim.machine.uart.flush()
        assert "A" in system.sim.machine.uart.transcript()

    def test_outport_forbidden_device(self, system):
        from repro.tsim.machine import GPTIMER_BASE

        assert system.call("XM_sparc_outport", GPTIMER_BASE, 1) == rc.XM_PERM_ERROR

    def test_atomic_add(self, system):
        addr = fdir_addr(0x300)
        system.kernel.machine.memory.write(addr, (5).to_bytes(4, "big"))
        assert system.call("XM_sparc_atomic_add", addr, 10) == rc.XM_OK
        assert system.kernel.machine.memory.read(addr, 4) == (15).to_bytes(4, "big")

    def test_atomic_add_wraps(self, system):
        addr = fdir_addr(0x304)
        system.kernel.machine.memory.write(addr, b"\xff\xff\xff\xff")
        assert system.call("XM_sparc_atomic_add", addr, 1) == rc.XM_OK
        assert system.kernel.machine.memory.read(addr, 4) == bytes(4)

    def test_atomic_and_or(self, system):
        addr = fdir_addr(0x308)
        system.kernel.machine.memory.write(addr, b"\x00\x00\x00\xf0")
        system.call("XM_sparc_atomic_or", addr, 0x0F)
        assert system.kernel.machine.memory.read(addr, 4)[-1] == 0xFF
        system.call("XM_sparc_atomic_and", addr, 0xF0)
        assert system.kernel.machine.memory.read(addr, 4)[-1] == 0xF0

    def test_atomic_unaligned(self, system):
        assert system.call("XM_sparc_atomic_add", fdir_addr(2), 1) == rc.XM_INVALID_PARAM

    def test_atomic_foreign_memory(self, system):
        assert (
            system.call("XM_sparc_atomic_add", partition_area_base(1), 1)
            == rc.XM_INVALID_ADDRESS
        )

    def test_parameterless_helpers(self, system):
        assert system.call("XM_sparc_flush_regwin") == rc.XM_OK
        assert system.call("XM_sparc_flush_cache") == rc.XM_OK
        assert system.call("XM_sparc_enable_traps") == rc.XM_OK
        psr = system.call("XM_sparc_get_psr")
        assert psr & 0x20  # ET set
        system.call("XM_sparc_disable_traps")
        assert not system.call("XM_sparc_get_psr") & 0x20

    def test_install_trap_handler(self, system):
        handler = partition_area_base(0) + 0x1000
        assert system.call("XM_sparc_install_trap_handler", 0x09, handler) == rc.XM_OK
        assert system.call("XM_sparc_install_trap_handler", 256, handler) == rc.XM_INVALID_PARAM
        assert (
            system.call("XM_sparc_install_trap_handler", 9, 0x50000000)
            == rc.XM_INVALID_ADDRESS
        )

    def test_set_tbr(self, system):
        assert system.call("XM_sparc_set_tbr", partition_area_base(0)) == rc.XM_OK
        assert system.call("XM_sparc_set_tbr", partition_area_base(0) + 4) == rc.XM_INVALID_PARAM
        assert system.call("XM_sparc_set_tbr", 0x50000000) == rc.XM_INVALID_ADDRESS
