"""Unit tests for the reference oracle."""

import pytest

from repro.fault.apimodel import api_model_from_table
from repro.fault.dictionaries import DictionarySet, Symbol
from repro.fault.mutant import ArgSpec, TestCallSpec
from repro.fault.oracle import ReferenceOracle
from repro.xm import rc
from repro.xm.vulns import FIXED_VERSION


def spec(function: str, *args: tuple[str, object]) -> TestCallSpec:
    """Build a spec from (param, value-or-symbol) pairs."""
    model = api_model_from_table()
    fn = model.lookup(function)
    arg_specs = []
    for param, (label_value) in zip(fn.params, args):
        name, value = label_value
        assert name == param.name, f"expected {param.name}, got {name}"
        if isinstance(value, Symbol):
            arg_specs.append(ArgSpec(param.name, value.value, symbol=value.value))
        else:
            arg_specs.append(ArgSpec(param.name, str(value), value=value))
    return TestCallSpec("t#0", function, fn.category, tuple(arg_specs))


@pytest.fixture
def oracle():
    return ReferenceOracle()


V = Symbol.VALID_BUFFER
LLONG_MIN = -(2**63)


class TestSystemOracle:
    def test_reset_valid_modes_no_return(self, oracle):
        for mode in (0, 1):
            e = oracle.expect(spec("XM_reset_system", ("mode", mode)))
            assert e.allow_no_return

    def test_reset_invalid_modes(self, oracle):
        for mode in (2, 16, 4294967295):
            e = oracle.expect(spec("XM_reset_system", ("mode", mode)))
            assert e.allowed == {rc.XM_INVALID_PARAM}
            assert e.invalid_params == ("mode",)

    def test_status_pointer(self, oracle):
        good = oracle.expect(spec("XM_get_system_status", ("status", V)))
        assert good.rc_acceptable(rc.XM_OK)
        bad = oracle.expect(spec("XM_get_system_status", ("status", 0)))
        assert bad.allowed == {rc.XM_INVALID_PARAM}


class TestTimerOracle:
    def test_small_interval_valid_on_vulnerable_docs(self, oracle):
        e = oracle.expect(
            spec("XM_set_timer", ("clockId", 0), ("absTime", 1), ("interval", 1))
        )
        assert e.rc_acceptable(rc.XM_OK)
        assert not e.invalid_params

    def test_small_interval_invalid_on_revised_docs(self):
        revised = ReferenceOracle(FIXED_VERSION)
        e = revised.expect(
            spec("XM_set_timer", ("clockId", 0), ("absTime", 1), ("interval", 1))
        )
        assert e.allowed == {rc.XM_INVALID_PARAM}
        assert "interval" in e.invalid_params

    def test_negative_interval_always_invalid(self, oracle):
        e = oracle.expect(
            spec(
                "XM_set_timer",
                ("clockId", 1),
                ("absTime", 1),
                ("interval", LLONG_MIN),
            )
        )
        assert e.allowed == {rc.XM_INVALID_PARAM}
        assert e.invalid_params == ("interval",)

    def test_bad_clock_blamed_first(self, oracle):
        e = oracle.expect(
            spec("XM_set_timer", ("clockId", 7), ("absTime", 1), ("interval", -1))
        )
        assert e.invalid_params[0] == "clockId"


class TestMulticallOracle:
    def test_valid_batch(self, oracle):
        e = oracle.expect(
            spec(
                "XM_multicall",
                ("startAddr", Symbol.VALID_BATCH_START),
                ("endAddr", Symbol.VALID_BATCH_END),
            )
        )
        assert e.allow_nonneg

    def test_invalid_start_blamed(self, oracle):
        e = oracle.expect(
            spec(
                "XM_multicall",
                ("startAddr", 0),
                ("endAddr", Symbol.VALID_BATCH_END),
            )
        )
        assert e.invalid_params == ("startAddr",)

    def test_invalid_end_blamed(self, oracle):
        e = oracle.expect(
            spec(
                "XM_multicall",
                ("startAddr", Symbol.VALID_BATCH_START),
                ("endAddr", 0x50000000),
            )
        )
        assert e.invalid_params == ("endAddr",)

    def test_removed_service_on_revised_docs(self):
        revised = ReferenceOracle(FIXED_VERSION)
        e = revised.expect(
            spec("XM_multicall", ("startAddr", 0), ("endAddr", 0))
        )
        assert e.allowed == {rc.XM_NO_SERVICE}


class TestPartitionOracle:
    def test_self_ops_no_return(self, oracle):
        for ident in (-1, 0):
            e = oracle.expect(spec("XM_halt_partition", ("partitionId", ident)))
            assert e.allow_no_return

    def test_other_partition_ok(self, oracle):
        e = oracle.expect(spec("XM_halt_partition", ("partitionId", 2)))
        assert e.rc_acceptable(rc.XM_OK)

    def test_invalid_partition(self, oracle):
        e = oracle.expect(spec("XM_halt_partition", ("partitionId", 16)))
        assert e.allowed == {rc.XM_INVALID_PARAM}

    def test_resume_state_dependent(self, oracle):
        e = oracle.expect(spec("XM_resume_partition", ("partitionId", 1)))
        assert e.rc_acceptable(rc.XM_OK)
        assert e.rc_acceptable(rc.XM_NO_ACTION)


class TestIpcOracle:
    def test_write_on_destination_port_mode_error(self, oracle):
        e = oracle.expect(
            spec(
                "XM_write_sampling_message",
                ("portDesc", 0),
                ("msgPtr", V),
                ("msgSize", 16),
            )
        )
        assert e.allowed == {rc.XM_INVALID_MODE}

    def test_read_allows_empty_channel(self, oracle):
        e = oracle.expect(
            spec(
                "XM_read_sampling_message",
                ("portDesc", 0),
                ("msgPtr", V),
                ("msgSize", 4294967295),
                ("flags", V),
            )
        )
        assert e.rc_acceptable(rc.XM_NO_ACTION)
        assert e.rc_acceptable(64)

    def test_send_allows_queue_full(self, oracle):
        e = oracle.expect(
            spec(
                "XM_send_queuing_message",
                ("portDesc", 1),
                ("msgPtr", V),
                ("msgSize", 16),
            )
        )
        assert e.rc_acceptable(rc.XM_OK)
        assert e.rc_acceptable(rc.XM_NO_SPACE)

    def test_create_sampling_size_mismatch_is_config_error(self, oracle):
        e = oracle.expect(
            spec(
                "XM_create_sampling_port",
                ("portName", Symbol.VALID_NAME),
                ("maxMsgSize", 16),
                ("direction", 1),
                ("refreshPeriod", 1),
            )
        )
        assert e.allowed == {rc.XM_INVALID_CONFIG}
        assert "maxMsgSize" in e.invalid_params


class TestMemoryOracle:
    def test_valid_self_copy(self, oracle):
        e = oracle.expect(
            spec(
                "XM_memory_copy",
                ("dstId", 0),
                ("dstAddr", V),
                ("srcId", -1),
                ("srcAddr", V),
                ("size", 16),
            )
        )
        assert e.rc_acceptable(rc.XM_OK)

    def test_foreign_id_with_fdir_address(self, oracle):
        e = oracle.expect(
            spec(
                "XM_memory_copy",
                ("dstId", 0),
                ("dstAddr", V),
                ("srcId", 1),
                ("srcAddr", V),
                ("size", 16),
            )
        )
        assert e.allowed == {rc.XM_INVALID_ADDRESS}

    def test_size_zero(self, oracle):
        e = oracle.expect(
            spec(
                "XM_memory_copy",
                ("dstId", 0),
                ("dstAddr", V),
                ("srcId", 0),
                ("srcAddr", V),
                ("size", 0),
            )
        )
        assert e.allowed == {rc.XM_INVALID_PARAM}


class TestOracleCoverage:
    def test_every_tested_hypercall_has_a_rule(self):
        model = api_model_from_table()
        oracle = ReferenceOracle()
        dicts = DictionarySet()
        from repro.fault.combinator import CartesianStrategy
        from repro.fault.matrix import build_matrix
        from repro.fault.mutant import dataset_to_spec

        for fn in model.tested_functions():
            matrix = build_matrix(fn, dicts)
            first = next(CartesianStrategy().generate(matrix))
            expectation = oracle.expect(dataset_to_spec(fn, first, 0))
            assert expectation is not None, fn.name

    def test_unknown_hypercall_has_no_rule(self):
        oracle = ReferenceOracle()
        with pytest.raises(KeyError, match="no oracle rule"):
            oracle.expect(TestCallSpec("x", "XM_bogus", "?", ()))
