"""Final coverage batch: slot yielding, ring overflows, CLI strategies."""

import pytest

from repro.xm import rc
from repro.xm.hm import HealthMonitor, HmEvent

from conftest import BootedSystem


class TestIdleSelfInSlot:
    def test_idle_consumes_remainder_of_slot(self):
        observed = {}

        def payload(ctx, xm):
            if observed:
                return
            xm.call("XM_idle_self")
            observed["consumed"] = ctx.kernel.sched.slot_consumed_us

        system = BootedSystem(fdir_payload=payload)
        system.run_frames(1)
        # FDIR's slot is 50 ms; idle_self consumed up to its end.
        assert observed["consumed"] == 50_000

    def test_idle_never_overruns(self):
        def payload(ctx, xm):
            xm.call("XM_idle_self")

        system = BootedSystem(fdir_payload=payload)
        system.run_frames(3)
        assert system.kernel.sched.overruns == []


class TestHmRingOverflow:
    def test_cursor_tracks_dropped_records(self):
        hm = HealthMonitor(capacity=4)
        for _ in range(3):
            hm.raise_event(HmEvent.PARTITION_ERROR, 0, 0)
        hm.consume(2)  # cursor at 2
        for _ in range(3):  # overflow by 2
            hm.raise_event(HmEvent.PARTITION_ERROR, 0, 0)
        assert hm.lost_events == 2
        assert hm.read_cursor == 0
        assert len(hm.unread()) == 4

    def test_seek_bounds_after_overflow(self):
        hm = HealthMonitor(capacity=4)
        for _ in range(10):
            hm.raise_event(HmEvent.PARTITION_ERROR, 0, 0)
        assert hm.seek(4, 0) == 4
        assert hm.seek(5, 0) is None


class TestTraceRingOverflow:
    def test_stream_drops_oldest(self):
        system = BootedSystem()
        stream = system.kernel.tracemgr.streams[0]
        for i in range(200):
            system.kernel.tracemgr.record(0, opcode=i, partition_id=0)
        assert stream.lost == 200 - 128
        assert stream.total == 200
        assert stream.events[0].opcode == 200 - 128

    def test_status_reports_losses(self):
        from repro.xm.status import XmTraceStatus

        system = BootedSystem()
        for i in range(140):
            system.kernel.tracemgr.record(0, opcode=i, partition_id=0)
        addr = system.scratch()
        assert system.call("XM_trace_status", 0, addr) == rc.XM_OK
        status = XmTraceStatus.unpack(
            system.fdir.address_space.read(addr, XmTraceStatus.SIZE)
        )
        assert status.lost_events == 12


class TestCliStrategies:
    @pytest.mark.parametrize("strategy", ["pairwise", "one-factor", "random"])
    def test_run_with_alternative_strategy(self, strategy, capsys):
        from repro.cli import main

        code = main(
            ["run", "--functions", "XM_reset_system", "--quiet", "--strategy", strategy]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"Strategy          : {strategy}" in out or "Strategy" in out

    def test_run_parallel_small(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "run",
                    "--functions",
                    "XM_switch_sched_plan",
                    "--quiet",
                    "--processes",
                    "2",
                ]
            )
            == 0
        )
        assert "Tests executed    : 2" in capsys.readouterr().out

    def test_run_custom_frames(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "run",
                    "--functions",
                    "XM_switch_sched_plan",
                    "--quiet",
                    "--frames",
                    "1",
                ]
            )
            == 0
        )


class TestUartTimestamps:
    def test_records_carry_emission_time(self):
        system = BootedSystem()
        system.run_frames(1)

        def console(ctx, xm):
            ctx.console("late line")

        # Inject a console write at a known later slot.
        system.kernel.partitions[0].app.payload = console
        system.run_frames(1)
        records = system.sim.machine.uart.records()
        late = [t for (t, src, text) in records if text == "late line"]
        assert late and late[0] >= 250_000
