"""Tests for the qualification dossier generator."""

import pytest

from repro.fault.campaign import Campaign
from repro.fault.dossier import build_dossier, write_dossier


@pytest.fixture(scope="module")
def campaign():
    return Campaign(functions=("XM_reset_system", "XM_set_timer"))


@pytest.fixture(scope="module")
def result(campaign):
    return campaign.run()


class TestDossier:
    def test_contains_configuration(self, result):
        text = build_dossier(result)
        assert "XtratuM 3.4.0" in text
        assert "cartesian" in text
        assert "39 of 61 hypercalls (64%)" in text

    def test_contains_table3_and_issues(self, result):
        text = build_dossier(result)
        assert "| Time Management | 2 | 2 | 32 | 3 |" in text
        assert "XM-ST-1" in text and "XM-RS-3" in text

    def test_contains_severity_and_offenders(self, result):
        text = build_dossier(result)
        assert "| Catastrophic | 2 |" in text
        assert "`xmTime_t` | `LLONG_MIN`" in text

    def test_truthbase_section_optional(self, campaign, result):
        without = build_dossier(result)
        with_tb = build_dossier(result, campaign)
        assert "Dry-run truth base" not in without
        assert "Dry-run truth base" in with_tb
        assert "documented expectations: 37" in with_tb

    def test_write_dossier(self, result, tmp_path):
        path = write_dossier(result, tmp_path / "dossier.md")
        assert path.exists()
        assert path.read_text().startswith("# Robustness campaign dossier")

    def test_clean_campaign_dossier(self):
        clean = Campaign(functions=("XM_switch_sched_plan",)).run()
        text = build_dossier(clean)
        assert "No robustness issues raised." in text
        assert "No dictionary value participated in a failure." in text

    def test_cli_dossier_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "d.md"
        assert (
            main(
                [
                    "run",
                    "--functions",
                    "XM_switch_sched_plan",
                    "--quiet",
                    "--dossier",
                    str(out),
                ]
            )
            == 0
        )
        assert out.exists()
