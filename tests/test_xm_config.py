"""Unit tests for the XM_CF configuration model and XML round trip."""

import pytest

from repro.sparc.memory import Access
from repro.testbed.eagleeye import eagleeye_config
from repro.xm.config import (
    ChannelConfig,
    ConfigError,
    MemoryAreaConfig,
    PartitionConfig,
    PlanConfig,
    SlotConfig,
    XMConfig,
    config_from_xml,
    config_to_xml,
)


def minimal_config() -> XMConfig:
    config = XMConfig()
    config.partitions.append(
        PartitionConfig(
            ident=0,
            name="P0",
            system=True,
            memory_areas=(MemoryAreaConfig("p0_ram", 0x40100000, 0x1000),),
        )
    )
    config.plans.append(
        PlanConfig(
            ident=0,
            major_frame_us=1000,
            slots=(SlotConfig(0, 0, 0, 1000),),
        )
    )
    return config


class TestValidation:
    def test_minimal_config_validates(self):
        minimal_config().validate()

    def test_eagleeye_validates(self):
        eagleeye_config().validate()

    def test_no_partitions_rejected(self):
        config = XMConfig()
        config.plans.append(PlanConfig(0, 1000, (SlotConfig(0, 0, 0, 1000),)))
        with pytest.raises(ConfigError, match="at least one partition"):
            config.validate()

    def test_no_plans_rejected(self):
        config = minimal_config()
        config.plans.clear()
        with pytest.raises(ConfigError, match="scheduling plan"):
            config.validate()

    def test_duplicate_partition_ids_rejected(self):
        config = minimal_config()
        config.partitions.append(
            PartitionConfig(
                ident=0,
                name="P1",
                memory_areas=(MemoryAreaConfig("p1_ram", 0x40200000, 0x1000),),
            )
        )
        with pytest.raises(ConfigError, match="duplicate partition ids"):
            config.validate()

    def test_memory_overlap_rejected(self):
        config = minimal_config()
        config.partitions.append(
            PartitionConfig(
                ident=1,
                name="P1",
                memory_areas=(MemoryAreaConfig("p1_ram", 0x40100800, 0x1000),),
            )
        )
        config.plans[0] = PlanConfig(
            0, 1000, (SlotConfig(0, 0, 0, 500), SlotConfig(1, 1, 500, 500))
        )
        with pytest.raises(ConfigError, match="memory overlap"):
            config.validate()

    def test_partition_without_memory_rejected(self):
        config = minimal_config()
        config.partitions[0] = PartitionConfig(ident=0, name="P0", system=True)
        with pytest.raises(ConfigError, match="no memory areas"):
            config.validate()

    def test_slot_beyond_major_frame_rejected(self):
        config = minimal_config()
        config.plans[0] = PlanConfig(0, 1000, (SlotConfig(0, 0, 500, 600),))
        with pytest.raises(ConfigError, match="exceeds major frame"):
            config.validate()

    def test_overlapping_slots_rejected(self):
        config = minimal_config()
        config.plans[0] = PlanConfig(
            0, 1000, (SlotConfig(0, 0, 0, 600), SlotConfig(1, 0, 500, 400))
        )
        with pytest.raises(ConfigError, match="overlapping slots"):
            config.validate()

    def test_slot_for_unknown_partition_rejected(self):
        config = minimal_config()
        config.plans[0] = PlanConfig(0, 1000, (SlotConfig(0, 7, 0, 1000),))
        with pytest.raises(ConfigError, match="unknown partition"):
            config.validate()

    def test_port_to_unknown_channel_rejected(self):
        from repro.xm.config import PortConfig

        config = minimal_config()
        config.partitions[0] = PartitionConfig(
            ident=0,
            name="P0",
            system=True,
            memory_areas=(MemoryAreaConfig("p0_ram", 0x40100000, 0x1000),),
            ports=(PortConfig("P", "NOPE", 0),),
        )
        with pytest.raises(ConfigError, match="no channel"):
            config.validate()

    def test_bad_channel_kind_rejected(self):
        with pytest.raises(ConfigError, match="bad kind"):
            ChannelConfig("c", "broadcast", 16)

    def test_queuing_needs_positive_depth(self):
        with pytest.raises(ConfigError, match="depth"):
            ChannelConfig("c", "queuing", 16, depth=0)


class TestLookups:
    def test_partition_lookup(self):
        config = eagleeye_config()
        assert config.partition(0).name == "FDIR"
        with pytest.raises(ConfigError):
            config.partition(9)

    def test_system_partitions(self):
        names = [p.name for p in eagleeye_config().system_partitions()]
        assert names == ["FDIR"]

    def test_plan_lookup(self):
        config = eagleeye_config()
        assert config.plan(1).major_frame_us == 250_000
        assert config.has_plan(0) and not config.has_plan(2)

    def test_channel_lookup(self):
        config = eagleeye_config()
        assert config.channel("CH_CMD").kind == "queuing"


class TestXmlRoundTrip:
    def test_eagleeye_roundtrip_preserves_structure(self):
        original = eagleeye_config()
        text = config_to_xml(original)
        parsed = config_from_xml(text)
        parsed.validate()
        assert [p.name for p in parsed.partitions] == [
            p.name for p in original.partitions
        ]
        assert [c.name for c in parsed.channels] == [
            c.name for c in original.channels
        ]
        assert len(parsed.plans) == len(original.plans)
        assert parsed.plan(0).slots == original.plan(0).slots

    def test_roundtrip_preserves_ports_and_grants(self):
        parsed = config_from_xml(config_to_xml(eagleeye_config()))
        fdir = parsed.partition(0)
        assert {p.name for p in fdir.ports} == {"TM_MON", "FDIR_EVT"}
        assert fdir.io_grants == ("apbuart0",)
        assert fdir.system

    def test_roundtrip_preserves_memory_rights(self):
        parsed = config_from_xml(config_to_xml(eagleeye_config()))
        area = parsed.partition(1).memory_areas[0]
        assert area.rights == Access.RWX
        assert area.size == 0x40000

    def test_xml_has_expected_elements(self):
        text = config_to_xml(eagleeye_config())
        assert "<SystemDescription>" in text
        assert 'flags="system"' in text
        assert "<CyclicPlanTable>" in text
