"""The full campaign lifecycle: dry run → campaign → feedback → regression.

Walks the workflow a qualification team would follow:

1. **Dry run** (§VI future work): export the documented expectation for
   every generated test — a reviewable truth base — before executing
   anything.
2. **Campaign** on the vulnerable kernel; cross-check the observations
   against the truth base.
3. **Feedback** (§III-A): mine which dictionary values exposed failures.
4. **Regression**: re-test the revised kernel with the trimmed,
   offender-focused dictionaries, and compare versions side by side.

Run with::

    python examples/campaign_lifecycle.py
"""

from repro.fault.campaign import Campaign
from repro.fault.export import compare_versions, table3_markdown
from repro.fault.feedback import feedback_report, regression_dictionaries
from repro.fault.truthbase import build_truthbase, compare_to_truthbase
from repro.xm.vulns import FIXED_VERSION

SCOPE = ("XM_reset_system", "XM_set_timer", "XM_multicall")


def main() -> None:
    campaign = Campaign(functions=SCOPE)

    print("=== 1. dry run: the truth base (no execution) ===")
    truthbase = build_truthbase(campaign)
    print(f"documented expectations : {len(truthbase)}")
    print(f"expected-error share    : {truthbase.expected_error_share():.0%}")
    sample = truthbase.lookup("XM_set_timer#0005")
    print(f"e.g. {sample.call}  ->  {sample.describe_expected()}")

    print("\n=== 2. campaign on XtratuM 3.4.0 + cross-check ===")
    result = campaign.run()
    divergences = compare_to_truthbase(result, truthbase)
    print(f"tests executed          : {result.total_tests}")
    print(f"issues raised           : {result.issue_count()}")
    print(f"truth-base divergences  : {len(divergences)}")
    print("first three divergences:")
    for divergence in divergences[:3]:
        print(f"  {divergence.call}: expected {divergence.expected}, "
              f"observed {divergence.observed}")

    print("\n=== 3. dictionary feedback ===")
    print(feedback_report(result, top=8))

    print("\n=== 4. regression on the revised kernel (3.4.1) ===")
    trimmed = regression_dictionaries(result)
    regression = Campaign(
        functions=SCOPE, dictionaries=trimmed, kernel_version=FIXED_VERSION
    )
    fixed_result = regression.run()
    print(f"regression tests        : {fixed_result.total_tests}")
    print(f"issues remaining        : {fixed_result.issue_count()}")

    comparison = compare_versions(result, fixed_result)
    print("\n" + comparison.markdown())

    print("\n=== Table III (markdown export of the 3.4.0 run) ===")
    print(table3_markdown(result))


if __name__ == "__main__":
    main()
