"""Quickstart: boot the testbed, run one suite, read the findings.

Run with::

    python examples/quickstart.py
"""

from repro.fault import Campaign, report
from repro.testbed import build_system


def fly_the_testbed() -> None:
    """Boot the EagleEye TSP system and let it fly for one second."""
    print("=== EagleEye TSP on XtratuM 3.4.0 (simulated LEON3) ===")
    sim = build_system()
    kernel = sim.boot()
    sim.run_major_frames(4)  # 4 x 250 ms
    print(f"virtual time      : {sim.now_us / 1e6:.2f} s")
    print(f"hypercalls served : {kernel.hypercall_count}")
    print(f"health monitor    : {len(kernel.hm.records)} events")
    telemetry = kernel.ipc.channels["CH_TM_AOCS"]
    print(f"AOCS telemetry    : {telemetry.writes} frames published")
    print()


def run_one_suite() -> None:
    """Inject faults through XM_set_timer and classify the outcomes."""
    print("=== Robustness suite: XM_set_timer ===")
    campaign = Campaign(functions=("XM_set_timer",))
    print(f"generated test cases: {campaign.total_tests()}")
    result = campaign.run()
    print(report.severity_summary(result))
    print()
    print(report.issues_report(result))
    print()


def main() -> None:
    fly_the_testbed()
    run_one_suite()
    print("Next: examples/eagleeye_full_campaign.py reproduces Table III.")


if __name__ == "__main__":
    main()
