"""The full XtratuM case study: reproduce Table III end to end.

Runs the complete campaign (39 tested hypercalls, ~2.9k tests) on the
vulnerable kernel, prints Table III with the paper's numbers alongside,
the nine issues, and then re-runs the three affected hypercalls on the
revised kernel to confirm the fixes.

Run with::

    python examples/eagleeye_full_campaign.py [--processes N] [--log out.jsonl]
"""

import argparse
import sys
import time

from repro.fault import Campaign, report
from repro.xm.vulns import FIXED_VERSION, KNOWN_VULNERABILITIES


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--processes", type=int, default=None)
    parser.add_argument("--log", default=None)
    args = parser.parse_args()

    campaign = Campaign.paper_campaign()
    total = campaign.total_tests()
    print(f"campaign size: {total} tests over {len(campaign.scope())} hypercalls")

    started = time.perf_counter()
    result = campaign.run(processes=args.processes)
    elapsed = time.perf_counter() - started
    print(f"executed in {elapsed:.1f}s "
          f"({total / elapsed:.0f} tests/s)\n")

    print(report.table3(result))
    print()
    print(report.issues_report(result))
    print()
    print(report.fig8())
    print()

    found = {issue.matched_vulnerability for issue in result.issues}
    expected = {vuln.ident for vuln in KNOWN_VULNERABILITIES}
    if found == expected:
        print(f"all {len(expected)} known vulnerabilities rediscovered.")
    else:  # pragma: no cover - diagnostic path
        print(f"MISMATCH: found {sorted(found)} expected {sorted(expected)}")

    if args.log:
        result.log.save(args.log)
        print(f"log written to {args.log}")

    print("\n=== regression: the revised kernel (3.4.1) ===")
    fixed = Campaign(
        functions=("XM_reset_system", "XM_set_timer", "XM_multicall"),
        kernel_version=FIXED_VERSION,
    ).run()
    print(f"tests: {fixed.total_tests}, issues: {fixed.issue_count()}")
    return 0 if found == expected and fixed.issue_count() == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
