"""Phantom parameters: covering the untestable 16 % (§V).

Ten of the 61 XtratuM hypercalls take no parameters, so the data-type
model has nothing to combine — yet those calls still depend on system
state.  Ballista's *phantom parameter* technique makes the state the
parameter: a dummy step drives the system into a chosen state before
the call under test runs.

This script runs every parameter-less hypercall under five system
states (nominal, HM log pressure, saturated IPC queues, degraded
partitions, armed timers) and reports per-state outcomes.

Run with::

    python examples/phantom_parameters.py
"""

from collections import defaultdict

from repro.fault.phantom import PhantomCampaign, PhantomState
from repro.xm import rc


def main() -> None:
    campaign = PhantomCampaign()
    cases = campaign.cases()
    print(f"{len(cases)} cases: "
          f"{len(cases) // len(PhantomState)} parameter-less hypercalls "
          f"x {len(PhantomState)} phantom states\n")

    result = campaign.run()

    by_function: dict[str, dict[str, str]] = defaultdict(dict)
    for record in result.records:
        function, state = record.test_id.split("@", 1)
        if record.sim_crashed:
            outcome = "SIM CRASH"
        elif record.never_returned:
            outcome = "no return"
        elif record.first_rc is None:
            outcome = "not invoked"
        else:
            outcome = rc.name_of(record.first_rc)
        by_function[function][state] = outcome

    states = [s.value for s in PhantomState]
    width = max(len(f) for f in by_function)
    print(f"{'hypercall'.ljust(width)}  " + "  ".join(s[:12].ljust(12) for s in states))
    for function, outcomes in sorted(by_function.items()):
        row = "  ".join(outcomes.get(s, "-")[:12].ljust(12) for s in states)
        print(f"{function.ljust(width)}  {row}")

    print(f"\nfailures: {len(result.failures)}")
    for record, classification in result.failures:
        print(f"  {record.test_id}: {classification.severity.value}")
    if not result.failures:
        print("the parameter-less services are robust under every phantom state")
        print("(consistent with the paper: the nine findings all involve")
        print(" parameterised services).")


if __name__ == "__main__":
    main()
