"""Porting the toolset: the two XML files ARE the kernel adapter.

The methodology is kernel-agnostic: everything kernel-specific lives in
the API Header XML (Fig. 2) and the Data Type XML (Fig. 3).  This script
plays the role of a test administrator preparing a campaign for a
(fictitious) subset interface:

1. author the two XML files by hand,
2. parse them,
3. widen one dictionary with a project-specific magic value,
4. generate the mutant C sources, and
5. run the campaign against the kernel.

Run with::

    python examples/custom_kernel_api.py
"""

from repro.fault.campaign import Campaign
from repro.fault.dictionaries import DictionarySet, TestValue
from repro.fault.matrix import build_matrix
from repro.fault.combinator import CartesianStrategy
from repro.fault.mutant import generate_mutants
from repro.fault.xmlio import (
    api_model_from_xml,
    dictionaries_to_xml,
)

API_HEADER_XML = """
<ApiHeader Kernel="XtratuM LEON3 (subset)">
  <Function Name="XM_reset_system" ReturnType="xm_s32_t" IsPointer="NO"
            Category="System Management" Tested="YES">
    <ParametersList>
      <Parameter Name="mode" Type="xm_u32_t" IsPointer="NO"/>
    </ParametersList>
  </Function>
  <Function Name="XM_reset_partition" ReturnType="xm_s32_t" IsPointer="NO"
            Category="Partition Management" Tested="YES">
    <ParametersList>
      <Parameter Name="partitionId" Type="xm_s32_t" IsPointer="NO"/>
      <Parameter Name="resetMode" Type="xm_u32_t" IsPointer="NO"/>
      <Parameter Name="status" Type="xm_u32_t" IsPointer="NO"/>
    </ParametersList>
  </Function>
</ApiHeader>
"""


def main() -> None:
    print("=== 1. parse the hand-written API Header XML ===")
    model = api_model_from_xml(API_HEADER_XML)
    for fn in model:
        params = ", ".join(f"{p.type_name} {p.name}" for p in fn.params)
        print(f"  {fn.return_type} {fn.name}({params})")

    print("\n=== 2. extend a dictionary with a project magic value ===")
    dictionaries = DictionarySet()
    u32 = dictionaries.lookup("xm_u32_t")
    widened = TestValue("0xDEAD", value=0xDEAD)
    dictionaries.add(
        type(u32)(u32.name, u32.basic_type, (*u32.values, widened), u32.description)
    )
    print(f"  xm_u32_t now has {len(dictionaries.lookup('xm_u32_t'))} values")
    print("  (the Data Type XML serialises the change:)")
    excerpt = dictionaries_to_xml(
        DictionarySet({"xm_u32_t": dictionaries.lookup("xm_u32_t")})
    )
    for line in excerpt.splitlines():
        print(f"    {line}")

    print("\n=== 3. generate the mutant C sources ===")
    fn = model.lookup("XM_reset_system")
    matrix = build_matrix(fn, dictionaries)
    mutants = list(generate_mutants(matrix, CartesianStrategy()))
    print(f"  {len(mutants)} mutants for {fn.name}; the first one:")
    for line in mutants[0].c_source.splitlines():
        print(f"    {line}")

    print("=== 4. run the campaign with the custom inputs ===")
    campaign = Campaign(model=model, dictionaries=dictionaries)
    result = campaign.run()
    print(f"  tests executed : {result.total_tests}")
    print(f"  issues raised  : {result.issue_count()}")
    for issue in result.issues:
        print(f"    {issue.matched_vulnerability}: {issue.description}")
    print("\n  0xDEAD is even, so it also cold-resets the vulnerable kernel —")
    print("  a fourth failing value folded into the same missing-validation family.")


if __name__ == "__main__":
    main()
