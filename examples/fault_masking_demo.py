"""Fig. 7 live: why dictionaries need *valid* values.

``hypercall(<invalid>, <faulty>)`` fails on the first parameter's check,
so the faulty second parameter never executes — the first parameter
*masks* the second.  The paper's countermeasure is seeding dictionaries
with values that can be valid (Table II's asterisks).

This script runs the ``XM_multicall`` suite twice — once with the full
dictionaries and once with every maybe-valid entry stripped — and shows
which of the paper's findings disappear.

Run with::

    python examples/fault_masking_demo.py
"""

from repro.fault.masking import masked_issue_comparison, masking_pairs

AFFECTED = ("XM_multicall", "XM_set_timer", "XM_reset_system")


def main() -> None:
    print("running the vulnerable-hypercall suites twice...")
    ablation = masked_issue_comparison(functions=AFFECTED)

    print("\n=== with the full dictionaries (valid values included) ===")
    for issue in ablation.full_result.issues:
        print(f"  {issue.matched_vulnerability}: "
              f"{issue.hypercall} — {issue.kind.value}")

    print("\n=== with valid values stripped from the dictionaries ===")
    for issue in ablation.stripped_result.issues:
        print(f"  {issue.matched_vulnerability}: "
              f"{issue.hypercall} — {issue.kind.value}")

    print("\n=== findings lost to fault masking ===")
    for ident in sorted(ablation.masked_issue_ids):
        print(f"  {ident}")
    print(f"\n{len(ablation.masked_issue_ids)} of "
          f"{len(ablation.full_issue_ids)} findings need valid dictionary "
          "entries to surface.")

    print("\n=== concrete masking evidence (mined from the full run) ===")
    pairs = masking_pairs(ablation.full_result)
    shown = set()
    for pair in pairs:
        key = (pair.function, pair.masking_param, pair.masked_param)
        if key in shown:
            continue
        shown.add(key)
        print(f"  {pair.function}: invalid {pair.masking_param!r} masks the "
              f"{pair.masked_failure} behind {pair.masked_param!r}")
        print(f"      exposing case : {pair.failing_case}")
        print(f"      masked case   : {pair.masked_case}")


if __name__ == "__main__":
    main()
